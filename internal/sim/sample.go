// Sampled simulation: SimPoint-style interval sampling over the
// measurement window, warmup checkpointing, and intra-run sharding.
//
// The exact path simulates every instruction of warmup + measurement in
// detail. The sampled path pays detail only where it measures: after
// the (checkpointable) warmup, a single cursor fast-forwards across the
// measurement window — functionally warming predictors and caches on
// the committed path unless the plan opts out — and interval start
// states are cloned off it, so every skipped instruction is traversed
// exactly once no matter how many intervals sample the window. K short
// detail intervals (micro-warmup + measurement) then run on those
// snapshots. Because the snapshot pass is serial and deterministic and
// each interval is a pure function of its snapshot, the per-interval
// results are independent of how intervals are distributed over shard
// goroutines — sharded and serial sampled runs are DeepEqual by
// construction, which the CI sampling job gates.
//
// Point estimates are ratios of summed counters (not means of
// per-interval ratios); each reported metric carries a 95% confidence
// half-width from the per-interval spread, which skiacmp -sample-ci
// checks against an exact run.
package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// DefaultSampleIntervals is the interval count a zero SamplePlan.K
// resolves to.
const DefaultSampleIntervals = 10

// SamplePlan configures sampled simulation for a run. The zero value
// of each field selects a default; a nil *SamplePlan means exact
// (full-detail) simulation.
type SamplePlan struct {
	// Intervals is K, the number of detail intervals spliced evenly
	// over the measurement window (0 = DefaultSampleIntervals).
	Intervals int
	// IntervalInsts is the measured detail length of each interval in
	// instructions (0 = a tenth of the per-interval window share, i.e.
	// 10% detail coverage).
	IntervalInsts uint64
	// MicroWarmup is the detail re-warmup run before each interval's
	// measurement, after the functional fast-forward (0 =
	// IntervalInsts/2). The first interval starts at the true warmup
	// boundary and needs none; its micro-warmup is clipped to zero.
	MicroWarmup uint64
	// Shards is the number of goroutines interval execution fans out
	// over within one run (0 = 1). Results are shard-count-invariant.
	Shards int
	// WarmWindow bounds the functional-warming horizon: when non-zero,
	// only the final WarmWindow instructions of each interval's
	// fast-forward run with functional warming; the distance before
	// that is skipped cold (emulator only). Predictor and cache state
	// has finite memory, so a horizon comfortably longer than it
	// approximates full-distance warming while long skips run at
	// cold-skip speed. Zero warms the entire skip distance (the most
	// accurate and slowest setting). Ignored under ColdSkip.
	WarmWindow uint64
	// ColdSkip disables functional warming during the fast-forward:
	// skipped instructions advance the emulator only, leaving predictors
	// and caches as the checkpoint left them. Faster per skipped
	// instruction, but biased whenever the workload's predictors are
	// still learning inside the measurement window; the default (warmed)
	// skip trains predictors and instruction caches on the skipped true
	// path (frontend.FastForwardWarm).
	ColdSkip bool
}

// Normalized resolves plan defaults against a measurement window,
// returning the effective K, interval length, micro-warmup, and shard
// count a run with this plan uses. Report metadata records the
// normalized plan so a sampled run is reproducible from its envelope.
func (p SamplePlan) Normalized(meas uint64) SamplePlan { return p.normalized(meas) }

// normalized resolves plan defaults against the measurement window.
func (p SamplePlan) normalized(meas uint64) SamplePlan {
	if p.Intervals <= 0 {
		p.Intervals = DefaultSampleIntervals
	}
	if p.IntervalInsts == 0 {
		p.IntervalInsts = meas / uint64(p.Intervals) / 10
		if p.IntervalInsts == 0 {
			p.IntervalInsts = 1
		}
	}
	if p.MicroWarmup == 0 {
		p.MicroWarmup = p.IntervalInsts / 2
	}
	if p.Shards <= 0 {
		p.Shards = 1
	}
	return p
}

// intervalStart returns interval i's offset from the measurement-window
// start: positions are meas*i/K, evenly spread with interval 0 pinned
// to the warmup boundary.
func (p SamplePlan) intervalStart(i int, meas uint64) uint64 {
	return meas * uint64(i) / uint64(p.Intervals)
}

// SampleStats conserves the sampled run's instruction accounting
// against the measurement window it stands in for: every instruction
// the run advanced past the warmup boundary is either functionally
// skipped, spent on detail micro-warmup, or measured —
// SkippedInstructions + MicroWarmupInstructions + MeasuredInstructions
// == AdvancedInstructions. The skip pass is chained (one cursor, each
// instruction skipped at most once), so SkippedInstructions equals the
// last interval's start position minus its micro-warmup — strictly
// less than the planned window, never the Σ start_i a per-interval
// re-skip would pay. Conservation is asserted by the sim tests and
// lint-checked by skialint's conserve analyzer.
type SampleStats struct {
	// PlannedWindow is the full measurement window being sampled.
	PlannedWindow uint64 `json:"planned_window"`
	// SkippedInstructions were advanced functionally (emulator only).
	SkippedInstructions uint64 `json:"skipped_instructions"`
	// MicroWarmupInstructions ran in detail before measurement began.
	MicroWarmupInstructions uint64 `json:"micro_warmup_instructions"`
	// MeasuredInstructions ran in detail inside measurement intervals.
	MeasuredInstructions uint64 `json:"measured_instructions"`
	// AdvancedInstructions is the cross-check total booked once per
	// interval; the three phase counters above must sum to it.
	AdvancedInstructions uint64 `json:"advanced_instructions"`
}

// MetricCI is one sampled metric: the point estimate computed from
// summed interval counters, and the 95% confidence half-width from the
// per-interval spread (1.96 * sd / sqrt(K); 0 for exact echoes and
// single-interval plans).
type MetricCI struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	CI   float64 `json:"ci"`
}

// SampleSummary is one run's sampling outcome, embedded in report
// envelopes under the (additive, schema v5) `sampling` section.
type SampleSummary struct {
	// Intervals, IntervalInstructions, MicroWarmupInstructions, and
	// WarmWindowInstructions echo the normalized plan (all zero for
	// exact echoes; a zero warm window means the full skip distance was
	// warmed).
	Intervals               int    `json:"intervals"`
	IntervalInstructions    uint64 `json:"interval_instructions"`
	MicroWarmupInstructions uint64 `json:"micro_warmup_instructions"`
	WarmWindowInstructions  uint64 `json:"warm_window_instructions,omitempty"`
	// Exact marks an echo row from a full-detail run (Runner.SampleEcho):
	// the means are exact values and every CI is zero. skiacmp
	// -sample-ci uses such rows as the reference side.
	Exact bool `json:"exact,omitempty"`
	// Metrics lists every headline metric with its confidence interval,
	// in fixed registry order.
	Metrics []MetricCI `json:"metrics"`
	// Counters is the run's conservation accounting.
	Counters SampleStats `json:"counters"`
}

// SpecSampling pairs one spec's sampling summary with its identity,
// for embedding in report envelopes.
type SpecSampling struct {
	Benchmark string        `json:"benchmark"`
	Label     string        `json:"label,omitempty"`
	Summary   SampleSummary `json:"summary"`
}

// sampleMetrics is the fixed registry of headline metrics reported
// with confidence intervals. Order is the report order.
var sampleMetrics = []struct {
	name string
	get  func(*cpu.Result) float64
}{
	{"ipc", func(r *cpu.Result) float64 { return r.IPC }},
	{"btb_miss_mpki", func(r *cpu.Result) float64 { return r.BTBMissMPKI }},
	{"effective_miss_mpki", func(r *cpu.Result) float64 { return r.EffectiveMissMPKI }},
	{"l1i_mpki", func(r *cpu.Result) float64 { return r.L1IMPKI }},
	{"cond_mpki", func(r *cpu.Result) float64 { return r.CondMPKI }},
	{"decode_idle_frac", func(r *cpu.Result) float64 { return r.DecodeIdleFrac }},
	{"btb_miss_l1i_hit_frac", func(r *cpu.Result) float64 { return r.BTBMissL1IHitFrac }},
}

// addCounters recursively adds every uint64 field of src into dst.
// cpu.Result nests only plain counter structs (frontend/cache/btb/
// tage/ittage/core stats), so uint64 fields are exactly the additive
// counters; strings, bools, and derived floats are left untouched.
func addCounters(dst, src reflect.Value) {
	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			addCounters(dst.Field(i), src.Field(i))
		}
	case reflect.Uint64:
		dst.SetUint(dst.Uint() + src.Uint())
	}
}

// aggregateResults sums the counters of per-interval results and
// recomputes every derived metric from the sums, so point estimates
// are ratios of totals rather than means of ratios.
func aggregateResults(benchmark string, parts []cpu.Result) cpu.Result {
	var agg cpu.Result
	for i := range parts {
		addCounters(reflect.ValueOf(&agg).Elem(), reflect.ValueOf(&parts[i]).Elem())
	}
	agg.Benchmark = benchmark
	agg.Derive()
	return agg
}

// confidence95 returns the 95% confidence half-width of the mean of
// vals: 1.96 * sample-sd / sqrt(n). Zero for fewer than two values.
func confidence95(vals []float64) float64 {
	n := float64(len(vals))
	if len(vals) < 2 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / n
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return 1.96 * math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}

// exactEcho builds the sampling row a full-detail run publishes when
// Runner.SampleEcho is set: exact means, zero confidence intervals.
// It lets skiacmp -sample-ci gate a sampled run against an exact one
// over identical (benchmark, label, metric) keys.
func exactEcho(res *cpu.Result, meas uint64) *SampleSummary {
	s := &SampleSummary{Exact: true}
	s.Counters.PlannedWindow = meas
	s.Counters.MeasuredInstructions = res.Instructions
	s.Counters.AdvancedInstructions = res.Instructions
	for _, m := range sampleMetrics {
		s.Metrics = append(s.Metrics, MetricCI{Name: m.name, Mean: m.get(res)})
	}
	return s
}

// ckptCell holds one warmed master core, built once under its own lock
// so concurrent specs sharing a warmup prefix wait rather than re-warm.
type ckptCell struct {
	mu   sync.Mutex
	core *cpu.Core
}

// CheckpointCache stores warmed master cores keyed by (benchmark,
// warmup, config). A runner with Checkpoint set keeps one internally;
// handing the same cache to several runners (Runner.Checkpoints)
// stretches warmup reuse across sweeps — the exact/sampled pairing the
// sampling CI gate runs, repeated sweeps in a bench harness, a serve
// process re-visiting the same warm point. Safe for concurrent use;
// each cell warms at most once.
type CheckpointCache struct {
	mu    sync.Mutex
	cells map[string]*ckptCell
}

// NewCheckpointCache returns an empty warmed-master store.
func NewCheckpointCache() *CheckpointCache { return &CheckpointCache{} }

// cell returns the (lazily created) cell for key.
func (cc *CheckpointCache) cell(key string) *ckptCell {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.cells == nil {
		cc.cells = make(map[string]*ckptCell)
	}
	c, ok := cc.cells[key]
	if !ok {
		c = &ckptCell{}
		cc.cells[key] = c
	}
	return c
}

// checkpointKey identifies a reusable warmed state: benchmark, warmup
// length, and the full core configuration (canonical JSON — struct
// field order makes marshaling deterministic). Anything that cannot
// change warmed state (label, interval collection, sampling plan,
// worker count) is deliberately absent.
func checkpointKey(spec RunSpec, warm uint64) (string, error) {
	cfg, err := json.Marshal(spec.Config)
	if err != nil {
		return "", fmt.Errorf("sim: checkpoint key: %w", err)
	}
	return fmt.Sprintf("%s|%d|%s", spec.Benchmark, warm, cfg), nil
}

// warmCore produces a core advanced through the warmup window. Without
// Runner.Checkpoint it builds and warms a fresh core (the historical
// path, bit-identical to prior releases). With Checkpoint it keeps one
// warmed master per (benchmark, config, warmup) and returns clones, so
// a sweep re-visiting the same warmup prefix — an exact/sampled pair,
// a re-run, a multi-seed sweep — pays warmup once. Reused warmups are
// booked into the progress counters as done work, keeping the
// done/planned fraction convergent.
func (r *Runner) warmCore(ctx context.Context, spec RunSpec, w *workload.Workload, warm uint64) (*cpu.Core, error) {
	if !r.Checkpoint {
		c, err := cpu.New(spec.Config, w)
		if err != nil {
			return nil, err
		}
		if err := r.runWindow(ctx, c, warm); err != nil {
			return nil, fmt.Errorf("sim: %s: warmup aborted: %w", spec.Benchmark, err)
		}
		return c, nil
	}
	key, err := checkpointKey(spec, warm)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.Checkpoints == nil {
		r.Checkpoints = NewCheckpointCache()
	}
	cc := r.Checkpoints
	r.mu.Unlock()
	cell := cc.cell(key)
	cell.mu.Lock()
	defer cell.mu.Unlock()
	if cell.core == nil {
		c, err := cpu.New(spec.Config, w)
		if err != nil {
			return nil, err
		}
		if err := r.runWindow(ctx, c, warm); err != nil {
			return nil, fmt.Errorf("sim: %s: warmup aborted: %w", spec.Benchmark, err)
		}
		cell.core = c
		return c.Clone(), nil
	}
	// Checkpoint hit: the warmup this spec planned is already done.
	done := r.progressDone.Add(warm)
	if r.OnProgress != nil {
		r.OnProgress(done, r.progressPlanned.Load())
	}
	return cell.core.Clone(), nil
}

// specPlan resolves the effective sampling plan for a spec (spec
// override first, then the runner default; nil = exact).
func (r *Runner) specPlan(spec RunSpec) *SamplePlan {
	if spec.Sample != nil {
		return spec.Sample
	}
	return r.Sample
}

// plannedInsts returns the detail-instruction volume a spec will
// register with the progress plan: warmup + measurement when exact;
// warmup + per-interval micro-warmup and measurement when sampled
// (functionally skipped instructions are not detail work and are not
// planned).
func (r *Runner) plannedInsts(spec RunSpec) uint64 {
	warm, meas := spec.windows()
	p := r.specPlan(spec)
	if p == nil {
		return warm + meas
	}
	np := p.normalized(meas)
	total := warm
	for i := 0; i < np.Intervals; i++ {
		mw := np.MicroWarmup
		if start := np.intervalStart(i, meas); mw > start {
			mw = start
		}
		total += mw + np.IntervalInsts
	}
	return total
}

// fastForward advances the core functionally by n instructions in
// cancellation-polled chunks — with functional warming unless the plan
// opts out. Functional stepping is an order of magnitude faster than
// detail, so the chunk is proportionally larger.
func (r *Runner) fastForward(ctx context.Context, c *cpu.Core, n uint64, cold bool) (uint64, error) {
	const ffChunk = 8 * ctxCheckChunk
	var skipped uint64
	for skipped < n {
		if err := ctx.Err(); err != nil {
			return skipped, err
		}
		step := n - skipped
		if step > ffChunk {
			step = ffChunk
		}
		var ran uint64
		if cold {
			ran = c.FastForward(step)
		} else {
			ran = c.FastForwardWarm(step)
		}
		skipped += ran
		if ran < step {
			break // workload halted
		}
	}
	return skipped, ctx.Err()
}

// intervalOutcome is one measurement interval's result set.
type intervalOutcome struct {
	res   cpu.Result
	rows  []metrics.Interval
	stats SampleStats
}

// buildSnapshots advances one cursor — the warmed master itself, which
// the caller owns exclusively — across the measurement window and
// clones the interval start states off it: snapshot i is the cursor
// paused at (start_i - microWarmup_i). Chaining matters for cost: the
// fast-forward between snapshots covers every skipped instruction
// exactly once, so a full-accuracy warmed skip costs one functional
// pass over the window instead of K re-warms of ever-longer prefixes
// (Σ start_i ≈ meas·(K-1)/2). The cursor pass is serial and fully
// deterministic, which is what makes the snapshot set — and therefore
// every downstream interval result — independent of the shard count.
// Returned deltas are the per-snapshot skip distances, for the
// conservation counters.
func (r *Runner) buildSnapshots(ctx context.Context, master *cpu.Core, plan SamplePlan, meas uint64) ([]*cpu.Core, []uint64, error) {
	snaps := make([]*cpu.Core, plan.Intervals)
	deltas := make([]uint64, plan.Intervals)
	var pos uint64
	for i := range snaps {
		start := plan.intervalStart(i, meas)
		mw := plan.MicroWarmup
		if mw > start {
			mw = start
		}
		if target := start - mw; target > pos {
			d := target - pos
			warm := d
			if !plan.ColdSkip && plan.WarmWindow > 0 && plan.WarmWindow < d {
				// Bounded warming horizon: cover the far distance cold,
				// then warm the final WarmWindow instructions.
				cold := d - plan.WarmWindow
				skipped, err := r.fastForward(ctx, master, cold, true)
				deltas[i] += skipped
				if err != nil {
					return nil, nil, fmt.Errorf("interval %d: fast-forward aborted: %w", i, err)
				}
				warm = plan.WarmWindow
			}
			skipped, err := r.fastForward(ctx, master, warm, plan.ColdSkip)
			deltas[i] += skipped
			if err != nil {
				return nil, nil, fmt.Errorf("interval %d: fast-forward aborted: %w", i, err)
			}
			pos = target
		}
		// A zero-distance snapshot (interval 0 pinned at the warmup
		// boundary) clones the cursor untouched, in-flight state and
		// all, exactly like exact measurement continuing from warmup.
		snaps[i] = master.Clone()
	}
	return snaps, deltas, nil
}

// runInterval executes one measurement interval on its prepared
// snapshot: detail micro-warmup, statistics reset, detail measurement.
// Each snapshot is consumed by exactly one interval, and the outcome is
// a pure function of (snapshot, plan), which together with the serial
// snapshot pass makes sharding shard-count-invariant.
func (r *Runner) runInterval(ctx context.Context, spec RunSpec, c *cpu.Core, plan SamplePlan, meas uint64, i int, interval uint64) (intervalOutcome, error) {
	var out intervalOutcome
	start := plan.intervalStart(i, meas)
	mw := plan.MicroWarmup
	if mw > start {
		mw = start
	}
	before := c.Retired()
	if err := r.runWindow(ctx, c, mw); err != nil {
		return out, fmt.Errorf("interval %d: micro-warmup aborted: %w", i, err)
	}
	out.stats.MicroWarmupInstructions = c.Retired() - before
	c.ResetStats()
	var col *metrics.Collector
	if interval > 0 {
		col = metrics.NewCollector(interval)
		c.AttachCollector(col)
	}
	if err := r.runWindow(ctx, c, plan.IntervalInsts); err != nil {
		return out, fmt.Errorf("interval %d: measurement aborted: %w", i, err)
	}
	if err := c.Frontend().Err(); err != nil {
		return out, fmt.Errorf("interval %d: %w", i, err)
	}
	out.res = c.Result(spec.Benchmark)
	if out.res.FE.ForcedResyncs > 0 {
		return out, fmt.Errorf("interval %d: %d forced resyncs indicate a front-end modeling bug", i, out.res.FE.ForcedResyncs)
	}
	out.stats.MeasuredInstructions = out.res.Instructions
	out.stats.AdvancedInstructions = out.stats.SkippedInstructions +
		out.stats.MicroWarmupInstructions + out.stats.MeasuredInstructions
	if col != nil {
		col.Finish(c.Sample())
		out.rows = col.Intervals()
	}
	return out, nil
}

// runSampled is the sampled counterpart of the exact measurement body:
// it fans plan.Intervals detail intervals over plan.Shards goroutines,
// merges counters in interval order (deterministic regardless of
// scheduling), splices interval-metric rows onto the measurement
// window's instruction axis, and attaches per-metric confidence
// intervals. detailInsts is the detail work actually executed, for
// throughput accounting.
func (r *Runner) runSampled(ctx context.Context, spec RunSpec, master *cpu.Core, plan SamplePlan, meas uint64, interval uint64) (res Result, detailInsts uint64, err error) {
	if spec.Tracer != nil {
		return Result{}, 0, fmt.Errorf("sim: %s: sampling does not support tracing (the spliced stream has no single cycle axis)", spec.Benchmark)
	}
	if spec.Attrib || r.Attrib {
		return Result{}, 0, fmt.Errorf("sim: %s: sampling does not support attribution; run exact for attribution studies", spec.Benchmark)
	}
	K := plan.Intervals
	snaps, deltas, err := r.buildSnapshots(ctx, master, plan, meas)
	if err != nil {
		return Result{}, 0, fmt.Errorf("sim: %s: %w", spec.Benchmark, err)
	}
	outs := make([]intervalOutcome, K)
	errs := make([]error, K)
	shards := plan.Shards
	if shards > K {
		shards = K
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < K; i += shards {
				outs[i], errs[i] = r.runInterval(ctx, spec, snaps[i], plan, meas, i, interval)
				outs[i].stats.SkippedInstructions = deltas[i]
				outs[i].stats.AdvancedInstructions += deltas[i]
				snaps[i] = nil // release the snapshot's memory promptly
			}
		}(s)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return Result{}, 0, fmt.Errorf("sim: %s: %w", spec.Benchmark, e)
		}
	}

	// Merge in interval order: counters, conservation stats, and the
	// spliced interval-metric stream rebased onto the window axis.
	parts := make([]cpu.Result, K)
	sstats := SampleStats{PlannedWindow: meas}
	var rows []metrics.Interval
	var cycBase uint64
	idx := 0
	for i := range outs {
		parts[i] = outs[i].res
		sstats.SkippedInstructions += outs[i].stats.SkippedInstructions
		sstats.MicroWarmupInstructions += outs[i].stats.MicroWarmupInstructions
		sstats.MeasuredInstructions += outs[i].stats.MeasuredInstructions
		sstats.AdvancedInstructions += outs[i].stats.AdvancedInstructions
		start := plan.intervalStart(i, meas)
		for _, row := range outs[i].rows {
			row.Index = idx
			idx++
			row.StartInstruction += start
			row.EndInstruction += start
			row.StartCycle += cycBase
			row.EndCycle += cycBase
			rows = append(rows, row)
		}
		if n := len(rows); n > 0 {
			cycBase = rows[n-1].EndCycle
		}
	}
	agg := aggregateResults(spec.Benchmark, parts)
	summary := &SampleSummary{
		Intervals:               K,
		IntervalInstructions:    plan.IntervalInsts,
		MicroWarmupInstructions: plan.MicroWarmup,
		WarmWindowInstructions:  plan.WarmWindow,
		Counters:                sstats,
	}
	vals := make([]float64, K)
	for _, m := range sampleMetrics {
		for i := range parts {
			vals[i] = m.get(&parts[i])
		}
		summary.Metrics = append(summary.Metrics, MetricCI{
			Name: m.name, Mean: m.get(&agg), CI: confidence95(vals),
		})
	}
	out := Result{Result: agg, Label: spec.Label, Sampling: summary}
	if interval > 0 {
		out.Intervals = rows
	}
	return out, sstats.MicroWarmupInstructions + sstats.MeasuredInstructions, nil
}

// SamplingSummaries returns one sampling summary per sampled (or
// exact-echo) run so far, sorted by benchmark then label (matching
// Stats().Specs order).
func (r *Runner) SamplingSummaries() []SpecSampling {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]SpecSampling(nil), r.samplingSums...)
	sortByBenchLabel(out, func(s SpecSampling) (string, string) { return s.Benchmark, s.Label })
	return out
}

// sortByBenchLabel stable-sorts xs by (benchmark, label).
func sortByBenchLabel[T any](xs []T, key func(T) (string, string)) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0; j-- {
			bj, lj := key(xs[j])
			bp, lp := key(xs[j-1])
			if bp < bj || (bp == bj && lp <= lj) {
				break
			}
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
