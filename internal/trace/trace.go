// Package trace records and replays dynamic VLX instruction streams.
// A trace captures exactly what the functional emulator produced —
// instruction PCs, branch outcomes, and targets — in a compact
// varint-delta binary format, so workload behaviour can be archived,
// diffed across generator versions, and replayed into analyses without
// re-running the emulator.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Magic identifies the trace format; Version gates incompatible layout
// changes.
const (
	Magic   = "VLXTRACE"
	Version = 1
)

// Record is one executed instruction.
type Record struct {
	// PC is the instruction address.
	PC uint64
	// Len is the instruction length in bytes.
	Len uint8
	// Class is the control-flow class.
	Class isa.Class
	// Taken reports whether control transferred.
	Taken bool
	// NextPC is the architecturally next instruction address.
	NextPC uint64
}

// FromStep converts an emulator step into a trace record.
func FromStep(st emu.Step) Record {
	return Record{
		PC:     st.Inst.PC,
		Len:    st.Inst.Len,
		Class:  st.Inst.Class,
		Taken:  st.Taken,
		NextPC: st.NextPC,
	}
}

// Writer streams records to an underlying io.Writer.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	buf    [2 * binary.MaxVarintLen64]byte
}

// NewWriter writes the header and returns a Writer. Call Flush when
// done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one record.
func (w *Writer) Write(r Record) error {
	// Layout per record:
	//   uvarint  pcDelta (zigzag from previous record's PC)
	//   byte     class<<2 | taken<<1 | nextIsFallthrough
	//   byte     len
	//   uvarint  target delta from NextPC-as-fallthrough (only when the
	//            next PC is not the fall-through)
	pcDelta := zigzag(int64(r.PC) - int64(w.lastPC))
	n := binary.PutUvarint(w.buf[:], pcDelta)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	fall := r.PC + uint64(r.Len)
	flags := byte(r.Class) << 2
	if r.Taken {
		flags |= 2
	}
	if r.NextPC == fall {
		flags |= 1
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	if err := w.w.WriteByte(r.Len); err != nil {
		return err
	}
	if r.NextPC != fall {
		n := binary.PutUvarint(w.buf[:], zigzag(int64(r.NextPC)-int64(fall)))
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			return err
		}
	}
	w.lastPC = r.PC
	w.count++
	return nil
}

// Count returns the records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// ErrBadHeader reports a stream that is not a VLX trace.
var ErrBadHeader = errors.New("trace: bad header")

// Reader streams records from an underlying io.Reader.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	count  uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(Magic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, ErrBadHeader
	}
	if head[len(Magic)] != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadHeader, head[len(Magic)], Version)
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Read() (Record, error) {
	pcDelta, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated pc delta: %w", err)
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated flags: %w", err)
	}
	ln, err := r.r.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated len: %w", err)
	}
	rec := Record{
		PC:    uint64(int64(r.lastPC) + unzigzag(pcDelta)),
		Len:   ln,
		Class: isa.Class(flags >> 2),
		Taken: flags&2 != 0,
	}
	fall := rec.PC + uint64(rec.Len)
	if flags&1 != 0 {
		rec.NextPC = fall
	} else {
		td, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: truncated target: %w", err)
		}
		rec.NextPC = uint64(int64(fall) + unzigzag(td))
	}
	r.lastPC = rec.PC
	r.count++
	return rec, nil
}

// Count returns the records read so far.
func (r *Reader) Count() uint64 { return r.count }

// Capture runs the emulator for up to n instructions, writing each step
// into w. It returns the number captured (fewer on halt).
func Capture(e *emu.Emulator, n uint64, w *Writer) (uint64, error) {
	var i uint64
	for i = 0; i < n && !e.Halted(); i++ {
		st, err := e.Step()
		if err != nil {
			return i, err
		}
		if err := w.Write(FromStep(st)); err != nil {
			return i, err
		}
	}
	return i, w.Flush()
}

// Summary aggregates whole-trace statistics.
type Summary struct {
	Instructions uint64
	Branches     uint64
	Taken        uint64
	ByClass      [8]uint64
}

// Summarize reads a whole trace and aggregates it.
func Summarize(r *Reader) (Summary, error) {
	var s Summary
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Instructions++
		if rec.Class.IsBranch() {
			s.Branches++
			if rec.Taken {
				s.Taken++
			}
		}
		if int(rec.Class) < len(s.ByClass) {
			s.ByClass[rec.Class]++
		}
	}
}
