package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/workload"
)

func testWorkload(t testing.TB) *workload.Workload {
	t.Helper()
	p, err := workload.ByName("noop")
	if err != nil {
		t.Fatal(err)
	}
	p.HotFuncs = 32
	p.ColdFuncs = 80
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRoundTripRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var recs []Record
	pc := uint64(0x40_0000)
	for i := 0; i < 5000; i++ {
		r := Record{
			PC:    pc,
			Len:   uint8(1 + rng.Intn(14)),
			Class: isa.Class(rng.Intn(7)),
			Taken: rng.Intn(2) == 0,
		}
		if r.Taken && rng.Intn(2) == 0 {
			r.NextPC = uint64(0x40_0000 + rng.Intn(1<<20))
		} else {
			r.NextPC = r.PC + uint64(r.Len)
		}
		recs = append(recs, r)
		pc = r.NextPC
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("writer count %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
	if r.Count() != uint64(len(recs)) {
		t.Errorf("reader count %d", r.Count())
	}
}

func TestCaptureAndReplayMatchesEmulator(t *testing.T) {
	w := testWorkload(t)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	captured, err := Capture(emu.New(w), n, tw)
	if err != nil {
		t.Fatal(err)
	}
	if captured != n {
		t.Fatalf("captured %d", captured)
	}

	// Replay must equal a fresh emulation.
	ref := emu.New(w)
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		st, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		rec, err := tr.Read()
		if err != nil {
			t.Fatal(err)
		}
		if rec != FromStep(st) {
			t.Fatalf("record %d: trace %+v vs emu %+v", i, rec, FromStep(st))
		}
	}
}

func TestCompactness(t *testing.T) {
	// The delta format should average only a few bytes per record.
	w := testWorkload(t)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	const n = 20_000
	if _, err := Capture(emu.New(w), n, tw); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / n
	if perRecord > 6 {
		t.Errorf("%.2f bytes/record; format regressed", perRecord)
	}
}

func TestSummarize(t *testing.T) {
	w := testWorkload(t)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	const n = 30_000
	if _, err := Capture(emu.New(w), n, tw); err != nil {
		t.Fatal(err)
	}
	tr, _ := NewReader(&buf)
	s, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != n {
		t.Errorf("instructions %d", s.Instructions)
	}
	if s.Branches == 0 || s.Taken == 0 || s.Taken > s.Branches {
		t.Errorf("branch stats implausible: %+v", s)
	}
	if s.ByClass[isa.ClassSeq] == 0 || s.ByClass[isa.ClassCall] == 0 {
		t.Errorf("class histogram empty: %v", s.ByClass)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("NOTATRACE")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewBufferString("VLXTRACE\x7f")); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewBufferString("VL")); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	tw.Write(Record{PC: 100, Len: 5, NextPC: 105})
	tw.Flush()
	full := buf.Bytes()
	// Chop mid-record: every strict prefix past the header must fail
	// with a non-EOF error or cleanly EOF at a record boundary.
	for cut := len(Magic) + 1 + 1; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(); err == nil {
			t.Fatalf("cut %d: truncated record decoded", cut)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}
