package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func decodeOne(t *testing.T, bs []byte) Inst {
	t.Helper()
	in, err := Decode(bs, 0x1000)
	if err != nil {
		t.Fatalf("Decode(% x): %v", bs, err)
	}
	return in
}

func TestDecodeNop(t *testing.T) {
	in := decodeOne(t, []byte{0x90})
	if in.Op != OpNop || in.Len != 1 || in.Class != ClassSeq {
		t.Errorf("got %+v", in)
	}
}

func TestNopAllLengths(t *testing.T) {
	var a Asm
	for n := 1; n <= 14; n++ {
		a.Reset()
		a.Nop(n)
		if a.Len() != n {
			t.Fatalf("Nop(%d) emitted %d bytes", n, a.Len())
		}
		// The emitted bytes must decode as a sequence of NOPs covering
		// exactly n bytes.
		off := 0
		for off < n {
			in, err := Decode(a.Bytes()[off:], uint64(off))
			if err != nil {
				t.Fatalf("Nop(%d): decode at %d: %v", n, off, err)
			}
			if in.Op != OpNop {
				t.Fatalf("Nop(%d): got op %v at %d", n, in.Op, off)
			}
			off += int(in.Len)
		}
		if off != n {
			t.Fatalf("Nop(%d): instructions cover %d bytes", n, off)
		}
	}
}

func TestDecodeBranches(t *testing.T) {
	cases := []struct {
		name   string
		emit   func(a *Asm)
		op     Op
		class  Class
		length uint8
		relOff int32
	}{
		{"jcc8", func(a *Asm) { a.JccRel8(3, -10) }, OpJcc, ClassDirectCond, 2, -10},
		{"jcc32", func(a *Asm) { a.JccRel32(7, 0x1234) }, OpJcc, ClassDirectCond, 6, 0x1234},
		{"jmp8", func(a *Asm) { a.JmpRel8(20) }, OpJmp, ClassDirectUncond, 2, 20},
		{"jmp32", func(a *Asm) { a.JmpRel32(-0x4000) }, OpJmp, ClassDirectUncond, 5, -0x4000},
		{"call", func(a *Asm) { a.CallRel32(0x999) }, OpCall, ClassCall, 5, 0x999},
		{"ret", func(a *Asm) { a.Ret() }, OpRet, ClassReturn, 1, 0},
		{"retimm", func(a *Asm) { a.RetImm(16) }, OpRet, ClassReturn, 3, 0},
		{"jmpind", func(a *Asm) { a.JmpInd(5) }, OpJmpInd, ClassIndirect, 2, 0},
		{"callind", func(a *Asm) { a.CallInd(2) }, OpCallInd, ClassIndirectCall, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var a Asm
			tc.emit(&a)
			in := decodeOne(t, a.Bytes())
			if in.Op != tc.op {
				t.Errorf("op = %v, want %v", in.Op, tc.op)
			}
			if in.Class != tc.class {
				t.Errorf("class = %v, want %v", in.Class, tc.class)
			}
			if in.Len != tc.length {
				t.Errorf("len = %d, want %d", in.Len, tc.length)
			}
			if in.RelOff != tc.relOff {
				t.Errorf("reloff = %d, want %d", in.RelOff, tc.relOff)
			}
		})
	}
}

func TestBranchTarget(t *testing.T) {
	var a Asm
	a.JmpRel32(0x100)
	in, err := Decode(a.Bytes(), 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := in.BranchTarget()
	if !ok {
		t.Fatal("direct jump should have a static target")
	}
	if want := uint64(0x2000 + 5 + 0x100); tgt != want {
		t.Errorf("target = %#x, want %#x", tgt, want)
	}

	a.Reset()
	a.Ret()
	in, err = Decode(a.Bytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.BranchTarget(); ok {
		t.Error("return must not have a static target")
	}
}

func TestBranchTargetBackward(t *testing.T) {
	var a Asm
	a.JmpRel8(-16)
	in, err := Decode(a.Bytes(), 0x100)
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := in.BranchTarget()
	if !ok || tgt != 0x100+2-16 {
		t.Errorf("target = %#x ok=%v, want %#x", tgt, ok, 0x100+2-16)
	}
}

func TestDecodePrefixes(t *testing.T) {
	bs := []byte{PrefixOpSize, PrefixLock, 0x90}
	in := decodeOne(t, bs)
	if in.Len != 3 || in.NumPrefixes != 2 || in.Op != OpNop {
		t.Errorf("got %+v", in)
	}
}

func TestDecodeTooManyPrefixes(t *testing.T) {
	bs := []byte{0x66, 0x67, 0xF0, 0x66, 0x90}
	if _, err := Decode(bs, 0); err == nil {
		t.Error("expected error for 4 prefixes")
	}
}

func TestDecodeUndefined(t *testing.T) {
	for _, b := range []byte{0x06, 0x27, 0x60, 0xD4, 0xF5, 0x9A, 0xCE} {
		if _, err := Decode([]byte{b, 0, 0, 0, 0, 0}, 0); err == nil {
			t.Errorf("byte %#02x should not decode", b)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	var a Asm
	a.JmpRel32(0x1000)
	full := a.Bytes()
	for n := 1; n < len(full); n++ {
		if _, err := Decode(full[:n], 0); err == nil {
			t.Errorf("truncated jmp of %d bytes decoded", n)
		}
	}
	if _, err := Decode(nil, 0); err == nil {
		t.Error("empty decode should fail")
	}
}

func TestDecodeIndirectUndefinedExtension(t *testing.T) {
	// FF with reg field other than 2 or 4 is undefined.
	for reg := uint8(0); reg < 8; reg++ {
		bs := []byte{0xFF, modByte(modRegOnly, reg, 0)}
		_, err := Decode(bs, 0)
		if reg == 2 || reg == 4 {
			if err != nil {
				t.Errorf("FF /%d should decode: %v", reg, err)
			}
		} else if err == nil {
			t.Errorf("FF /%d should not decode", reg)
		}
	}
}

func TestLengthAt(t *testing.T) {
	var a Asm
	a.MovImm32(1, 0x11223344) // 5 bytes
	a.Ret()                   // 1 byte
	bs := a.Bytes()
	if got := LengthAt(bs, 0); got != 5 {
		t.Errorf("LengthAt(0) = %d, want 5", got)
	}
	if got := LengthAt(bs, 5); got != 1 {
		t.Errorf("LengthAt(5) = %d, want 1", got)
	}
	if got := LengthAt(bs, 99); got != 0 {
		t.Errorf("LengthAt(out of range) = %d, want 0", got)
	}
	if got := LengthAt(bs, -1); got != 0 {
		t.Errorf("LengthAt(-1) = %d, want 0", got)
	}
}

// TestEncodeDecodeRoundTrip drives every encoder method and checks that
// decoding reproduces the expected op, class and length.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	type want struct {
		op  Op
		cls Class
	}
	emits := []struct {
		name string
		do   func(a *Asm)
		want want
	}{
		{"alu", func(a *Asm) { a.ALUReg(2, 3, 4) }, want{OpALUReg, ClassSeq}},
		{"cmp", func(a *Asm) { a.Cmp(1, 2) }, want{OpTest, ClassSeq}},
		{"test", func(a *Asm) { a.Test(1, 2) }, want{OpTest, ClassSeq}},
		{"aluimm8", func(a *Asm) { a.ALUImm8(1, -5) }, want{OpALUImm, ClassSeq}},
		{"aluimm32", func(a *Asm) { a.ALUImm32(1, 1<<20) }, want{OpALUImm, ClassSeq}},
		{"movimm8", func(a *Asm) { a.MovImm8(7, 9) }, want{OpMovImm, ClassSeq}},
		{"movimm32", func(a *Asm) { a.MovImm32(0, -1) }, want{OpMovImm, ClassSeq}},
		{"load8", func(a *Asm) { a.Load(1, 2, 8) }, want{OpLoad, ClassSeq}},
		{"load32", func(a *Asm) { a.Load(1, 2, 4096) }, want{OpLoad, ClassSeq}},
		{"store8", func(a *Asm) { a.Store(1, 2, -8) }, want{OpStore, ClassSeq}},
		{"store32", func(a *Asm) { a.Store(1, 2, -4096) }, want{OpStore, ClassSeq}},
		{"lea", func(a *Asm) { a.Lea(3, 4, 16) }, want{OpLea, ClassSeq}},
		{"push", func(a *Asm) { a.Push(6) }, want{OpPush, ClassSeq}},
		{"pop", func(a *Asm) { a.Pop(6) }, want{OpPop, ClassSeq}},
		{"inc", func(a *Asm) { a.IncDec(1, false) }, want{OpIncDec, ClassSeq}},
		{"dec", func(a *Asm) { a.IncDec(1, true) }, want{OpIncDec, ClassSeq}},
		{"halt", func(a *Asm) { a.Halt() }, want{OpHalt, ClassSeq}},
	}
	for _, e := range emits {
		t.Run(e.name, func(t *testing.T) {
			var a Asm
			e.do(&a)
			in := decodeOne(t, a.Bytes())
			if in.Op != e.want.op || in.Class != e.want.cls {
				t.Errorf("got op=%v class=%v, want op=%v class=%v", in.Op, in.Class, e.want.op, e.want.cls)
			}
			if int(in.Len) != a.Len() {
				t.Errorf("decoded len %d != emitted len %d", in.Len, a.Len())
			}
		})
	}
}

// TestDecodeNeverPanicsOrOverruns: property — Decode on arbitrary bytes
// either fails or returns a length within [1, MaxInstLen] that does not
// exceed the input.
func TestDecodeNeverPanicsOrOverruns(t *testing.T) {
	f := func(bs []byte) bool {
		in, err := Decode(bs, 0)
		if err != nil {
			return true
		}
		return in.Len >= 1 && int(in.Len) <= len(bs) && in.Len <= MaxInstLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestLengthAtMatchesDecode: property — LengthAt agrees with Decode for
// random byte streams at random offsets.
func TestLengthAtMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		bs := make([]byte, 1+rng.Intn(32))
		rng.Read(bs)
		off := rng.Intn(len(bs))
		got := LengthAt(bs, off)
		in, err := Decode(bs[off:], 0)
		if err != nil {
			if got != 0 {
				t.Fatalf("LengthAt=%d but Decode failed for % x @%d", got, bs, off)
			}
			continue
		}
		if got != int(in.Len) {
			t.Fatalf("LengthAt=%d, Decode len=%d for % x @%d", got, in.Len, bs, off)
		}
	}
}

// TestDecodeDeterministic: property — Decode is a pure function of its
// inputs.
func TestDecodeDeterministic(t *testing.T) {
	f := func(bs []byte, pc uint64) bool {
		a, errA := Decode(bs, pc)
		b, errB := Decode(bs, pc)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestShadowEligible(t *testing.T) {
	eligible := map[Class]bool{
		ClassSeq:          false,
		ClassDirectCond:   false,
		ClassDirectUncond: true,
		ClassCall:         true,
		ClassReturn:       true,
		ClassIndirect:     false,
		ClassIndirectCall: false,
	}
	for c, want := range eligible {
		if got := c.IsShadowEligible(); got != want {
			t.Errorf("%v.IsShadowEligible() = %v, want %v", c, got, want)
		}
	}
}

func TestIsBranch(t *testing.T) {
	if ClassSeq.IsBranch() {
		t.Error("Seq is not a branch")
	}
	for _, c := range []Class{ClassDirectCond, ClassDirectUncond, ClassCall, ClassReturn, ClassIndirect, ClassIndirectCall} {
		if !c.IsBranch() {
			t.Errorf("%v should be a branch", c)
		}
	}
}

func TestClassAndOpStrings(t *testing.T) {
	// Exercise the Stringers over every defined value so a new enum
	// entry without a name shows up as a test failure.
	for c := ClassSeq; c <= ClassIndirectCall; c++ {
		if s := c.String(); s == "" || s[0] == 'C' && s != "Call" {
			t.Errorf("Class(%d).String() = %q", c, s)
		}
	}
	for o := OpInvalid; o <= OpSysEnter; o++ {
		if s := o.String(); s == "" {
			t.Errorf("Op(%d).String() is empty", o)
		}
	}
}

func TestDisassembleCoverage(t *testing.T) {
	var progs []func(a *Asm)
	progs = append(progs,
		func(a *Asm) { a.JccRel8(1, 5) },
		func(a *Asm) { a.JmpRel32(64) },
		func(a *Asm) { a.CallRel32(128) },
		func(a *Asm) { a.Ret() },
		func(a *Asm) { a.RetImm(8) },
		func(a *Asm) { a.JmpInd(3) },
		func(a *Asm) { a.CallInd(3) },
		func(a *Asm) { a.MovImm32(2, 7) },
		func(a *Asm) { a.ALUReg(0, 1, 2) },
		func(a *Asm) { a.ALUImm8(1, 3) },
		func(a *Asm) { a.Load(1, 2, 4) },
		func(a *Asm) { a.Store(1, 2, 4) },
		func(a *Asm) { a.Lea(1, 2, 4) },
		func(a *Asm) { a.Push(1) },
		func(a *Asm) { a.Pop(1) },
		func(a *Asm) { a.IncDec(1, false) },
		func(a *Asm) { a.Test(1, 2) },
		func(a *Asm) { a.Nop(1) },
		func(a *Asm) { a.Halt() },
	)
	for i, p := range progs {
		var a Asm
		p(&a)
		in, err := Decode(a.Bytes(), 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if s := Disassemble(in); s == "" || s == "invalid" {
			t.Errorf("case %d: Disassemble = %q", i, s)
		}
	}
}

func TestPatchRel32(t *testing.T) {
	var a Asm
	a.JmpRel32(0)
	a.PatchRel32(1, 0x11223344)
	in := decodeOne(t, a.Bytes())
	if in.RelOff != 0x11223344 {
		t.Errorf("patched reloff = %#x", in.RelOff)
	}
}

func TestPatchRel32OutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var a Asm
	a.Ret()
	a.PatchRel32(0, 1)
}

func TestDecodeErrorMessage(t *testing.T) {
	_, err := Decode([]byte{0x06}, 0xdead)
	de, ok := err.(*DecodeError)
	if !ok {
		t.Fatalf("want *DecodeError, got %T", err)
	}
	if de.PC != 0xdead || de.Byte != 0x06 {
		t.Errorf("got %+v", de)
	}
	if de.Error() == "" {
		t.Error("empty error message")
	}
}

// TestInstructionStreamSelfConsistency encodes a random but valid
// instruction stream and verifies sequential decode recovers exactly the
// same boundaries (a fundamental invariant the program builder and
// emulator rely on).
func TestInstructionStreamSelfConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a Asm
	var wantLens []int
	for i := 0; i < 500; i++ {
		before := a.Len()
		switch rng.Intn(10) {
		case 0:
			a.Nop(1 + rng.Intn(9))
		case 1:
			a.ALUReg(rng.Intn(5), uint8(rng.Intn(8)), uint8(rng.Intn(8)))
		case 2:
			a.MovImm32(uint8(rng.Intn(8)), rng.Int31())
		case 3:
			a.Load(uint8(rng.Intn(8)), uint8(rng.Intn(8)), rng.Int31n(8192)-4096)
		case 4:
			a.Store(uint8(rng.Intn(8)), uint8(rng.Intn(8)), rng.Int31n(256)-128)
		case 5:
			a.JccRel8(uint8(rng.Intn(16)), int8(rng.Intn(100)))
		case 6:
			a.CallRel32(rng.Int31())
		case 7:
			a.Push(uint8(rng.Intn(8)))
		case 8:
			a.ALUImm32(uint8(rng.Intn(8)), rng.Int31())
		case 9:
			a.Lea(uint8(rng.Intn(8)), uint8(rng.Intn(8)), int8(rng.Intn(100)))
		}
		wantLens = append(wantLens, a.Len()-before)
	}
	bs := a.Bytes()
	off := 0
	for i, want := range wantLens {
		// Nop() may emit several instructions; walk them all.
		covered := 0
		for covered < want {
			in, err := Decode(bs[off+covered:], uint64(off+covered))
			if err != nil {
				t.Fatalf("inst %d: decode at %d: %v", i, off+covered, err)
			}
			covered += int(in.Len)
		}
		if covered != want {
			t.Fatalf("inst %d: covered %d bytes, want %d", i, covered, want)
		}
		off += want
	}
	if off != len(bs) {
		t.Fatalf("covered %d of %d bytes", off, len(bs))
	}
}

func BenchmarkDecode(b *testing.B) {
	var a Asm
	a.MovImm32(1, 42)
	a.Load(2, 1, 64)
	a.ALUReg(0, 1, 2)
	a.JccRel8(4, -12)
	bs := a.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := 0
		for off < len(bs) {
			in, err := Decode(bs[off:], uint64(off))
			if err != nil {
				b.Fatal(err)
			}
			off += int(in.Len)
		}
	}
}

func BenchmarkLengthAt(b *testing.B) {
	var a Asm
	for i := 0; i < 16; i++ {
		a.MovImm32(uint8(i&7), int32(i))
	}
	bs := a.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LengthAt(bs, i%len(bs))
	}
}
