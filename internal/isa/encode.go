package isa

import "fmt"

// Asm is an append-only instruction encoder. It exists for the program
// builder (internal/program): workload synthesis emits real VLX bytes so
// that cache lines physically contain shadow branches. The zero value is
// ready to use.
type Asm struct {
	buf []byte
}

// Bytes returns the encoded byte stream. The returned slice aliases the
// encoder's buffer.
func (a *Asm) Bytes() []byte { return a.buf }

// Len returns the current length of the encoded stream in bytes.
func (a *Asm) Len() int { return len(a.buf) }

// Reset discards all encoded bytes.
func (a *Asm) Reset() { a.buf = a.buf[:0] }

func (a *Asm) emit(bs ...byte) { a.buf = append(a.buf, bs...) }

func (a *Asm) emit32(v int32) {
	a.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// modByte builds a mod byte from its three fields.
func modByte(mod int, reg, rm uint8) byte {
	return byte(mod)<<6 | (reg&7)<<3 | (rm & 7)
}

// Nop emits a NOP of exactly n bytes, 1 <= n <= 9. VLX composes long NOPs
// from the two-byte 0F 1F escape plus mod/displacement bytes and
// prefixes, just as x86 does; this is what lets the workload generator
// pad blocks to arbitrary alignments while keeping every byte decodable.
func (a *Asm) Nop(n int) {
	switch {
	case n <= 0:
		return
	case n == 1:
		a.emit(0x90)
	case n == 2:
		a.emit(PrefixOpSize, 0x90)
	case n == 3:
		a.emit(0x0F, 0x1F, modByte(modRegReg, 0, 0))
	case n == 4:
		a.emit(0x0F, 0x1F, modByte(modDisp8, 0, 0), 0x00)
	case n == 5:
		a.emit(PrefixOpSize, 0x0F, 0x1F, modByte(modDisp8, 0, 0), 0x00)
	case n == 6:
		a.emit(PrefixOpSize, PrefixAddrSize, 0x0F, 0x1F, modByte(modDisp8, 0, 0), 0x00)
	case n == 7:
		a.emit(0x0F, 0x1F, modByte(modDisp32, 0, 0), 0x00, 0x00, 0x00, 0x00)
	case n == 8:
		a.emit(PrefixOpSize, 0x0F, 0x1F, modByte(modDisp32, 0, 0), 0x00, 0x00, 0x00, 0x00)
	case n >= 9:
		a.emit(PrefixOpSize, PrefixAddrSize, 0x0F, 0x1F, modByte(modDisp32, 0, 0), 0x00, 0x00, 0x00, 0x00)
		a.Nop(n - 9)
	}
}

// ALUReg emits a 2-byte register/register ALU op. kind selects among the
// six encodable opcode bytes for byte-stream diversity.
func (a *Asm) ALUReg(kind int, dst, src uint8) {
	ops := [...]byte{0x01, 0x09, 0x21, 0x29, 0x31}
	a.emit(ops[kind%len(ops)], modByte(modRegOnly, src, dst))
}

// Cmp emits a 2-byte compare (sets condition state for a following Jcc).
func (a *Asm) Cmp(rA, rB uint8) { a.emit(0x39, modByte(modRegOnly, rB, rA)) }

// Test emits a 2-byte test.
func (a *Asm) Test(rA, rB uint8) { a.emit(0x85, modByte(modRegOnly, rB, rA)) }

// ALUImm8 emits a 3-byte ALU with an 8-bit immediate.
func (a *Asm) ALUImm8(dst uint8, imm int8) {
	a.emit(0x83, modByte(modRegOnly, 0, dst), byte(imm))
}

// ALUImm32 emits a 6-byte ALU with a 32-bit immediate.
func (a *Asm) ALUImm32(dst uint8, imm int32) {
	a.emit(0x81, modByte(modRegOnly, 0, dst))
	a.emit32(imm)
}

// MovImm8 emits a 2-byte move-immediate.
func (a *Asm) MovImm8(dst uint8, imm int8) { a.emit(0xB0|dst&7, byte(imm)) }

// MovImm32 emits a 5-byte move-immediate. Note the 4 immediate bytes can
// alias any opcode, which is the root of head-shadow-decoding ambiguity.
func (a *Asm) MovImm32(dst uint8, imm int32) {
	a.emit(0xB8 | dst&7)
	a.emit32(imm)
}

// Load emits a load of reg from [base+disp]; 3 bytes with disp8, 6 with
// disp32.
func (a *Asm) Load(reg, base uint8, disp int32) {
	if disp >= -128 && disp <= 127 {
		a.emit(0x8B, modByte(modDisp8, reg, base), byte(disp))
		return
	}
	a.emit(0x8B, modByte(modDisp32, reg, base))
	a.emit32(disp)
}

// Store emits a store of reg to [base+disp]; 3 bytes with disp8, 6 with
// disp32.
func (a *Asm) Store(reg, base uint8, disp int32) {
	if disp >= -128 && disp <= 127 {
		a.emit(0x89, modByte(modDisp8, reg, base), byte(disp))
		return
	}
	a.emit(0x89, modByte(modDisp32, reg, base))
	a.emit32(disp)
}

// Lea emits a 3-byte address computation.
func (a *Asm) Lea(dst, base uint8, disp int8) {
	a.emit(0x8D, modByte(modDisp8, dst, base), byte(disp))
}

// Push emits a 1-byte push.
func (a *Asm) Push(reg uint8) { a.emit(0x50 | reg&7) }

// Pop emits a 1-byte pop.
func (a *Asm) Pop(reg uint8) { a.emit(0x58 | reg&7) }

// IncDec emits a 1-byte increment (dec=false) or decrement (dec=true).
func (a *Asm) IncDec(reg uint8, dec bool) {
	op := byte(0x40)
	if dec {
		op = 0x48
	}
	a.emit(op | reg&7)
}

// JccRel8 emits a 2-byte conditional jump with condition code cc (0-15).
func (a *Asm) JccRel8(cc uint8, off int8) { a.emit(0x70|cc&0xF, byte(off)) }

// JccRel32 emits a 6-byte conditional jump.
func (a *Asm) JccRel32(cc uint8, off int32) {
	a.emit(0x0F, 0x80|cc&0xF)
	a.emit32(off)
}

// JmpRel8 emits a 2-byte unconditional jump.
func (a *Asm) JmpRel8(off int8) { a.emit(0xEB, byte(off)) }

// JmpRel32 emits a 5-byte unconditional jump.
func (a *Asm) JmpRel32(off int32) {
	a.emit(0xE9)
	a.emit32(off)
}

// CallRel32 emits a 5-byte direct call.
func (a *Asm) CallRel32(off int32) {
	a.emit(0xE8)
	a.emit32(off)
}

// Ret emits a 1-byte return.
func (a *Asm) Ret() { a.emit(0xC3) }

// RetImm emits a 3-byte return with stack adjustment.
func (a *Asm) RetImm(n int16) { a.emit(0xC2, byte(n), byte(n>>8)) }

// JmpInd emits a 2-byte indirect jump through reg.
func (a *Asm) JmpInd(reg uint8) { a.emit(0xFF, modByte(modRegOnly, 4, reg)) }

// CallInd emits a 2-byte indirect call through reg.
func (a *Asm) CallInd(reg uint8) { a.emit(0xFF, modByte(modRegOnly, 2, reg)) }

// Halt emits the 1-byte emulator stop instruction.
func (a *Asm) Halt() { a.emit(0xF4) }

// PatchRel32 rewrites the 32-bit little-endian relocation field of a
// branch whose *last four* encoded bytes sit at [pos, pos+4). The program
// builder uses it to fix up forward references once layout is final. It
// panics if pos is out of range, since that is a builder bug.
func (a *Asm) PatchRel32(pos int, v int32) {
	if pos < 0 || pos+4 > len(a.buf) {
		panic(fmt.Sprintf("isa: PatchRel32 out of range: pos=%d len=%d", pos, len(a.buf)))
	}
	a.buf[pos] = byte(v)
	a.buf[pos+1] = byte(v >> 8)
	a.buf[pos+2] = byte(v >> 16)
	a.buf[pos+3] = byte(v >> 24)
}

// FixedLenSizes lists the encodable byte sizes for common filler
// instruction families, used by the workload generator to reach target
// basic-block sizes with varied, realistic byte streams.
var FixedLenSizes = []int{1, 2, 3, 5, 6}
