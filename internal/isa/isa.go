// Package isa defines VLX, a synthetic variable-length CISC instruction
// set patterned after x86. VLX exists so the repository can reproduce the
// shadow-branch decoding problem from "Exposing Shadow Branches" (Skia,
// ASPLOS 2025) without shipping a full x86 decoder: instructions are 1 to
// 15 bytes long, immediates and displacements freely alias opcode bytes,
// and the branch repertoire covers every class the paper cares about
// (direct conditional, direct unconditional, call, return, indirect).
//
// The package provides three decoders:
//
//   - Decode: the full decoder used by the fetch/decode pipeline and the
//     functional emulator.
//   - LengthAt: the boundary-only decoder, the hardware analogue of the
//     Shadow Branch Decoder's length pre-decode (Section 4.1 of the paper).
//   - Disassemble: a human-readable renderer used by cmd/vlxdump and the
//     examples.
//
// Encoding summary (all multi-byte immediates are little-endian):
//
//	[prefix]* opcode [modbyte] [disp8|disp32] [imm8|imm16|imm32]
//
// At most three prefix bytes are permitted; an instruction longer than
// MaxInstLen bytes is invalid, exactly like x86's 15-byte limit.
package isa

import "fmt"

// MaxInstLen is the maximum encodable instruction length in bytes,
// matching the x86 limit the paper's decoder has to live with.
const MaxInstLen = 15

// Class partitions instructions by how their control flow behaves. The
// values mirror Section 2.4 of the paper.
type Class uint8

const (
	// ClassSeq is any non-branch instruction.
	ClassSeq Class = iota
	// ClassDirectCond is a conditional jump with a PC-relative target.
	ClassDirectCond
	// ClassDirectUncond is an unconditional jump with a PC-relative target.
	ClassDirectUncond
	// ClassCall is a direct call: unconditional, PC-relative, pushes a
	// return address.
	ClassCall
	// ClassReturn pops a return address and jumps to it.
	ClassReturn
	// ClassIndirect is an unconditional jump through a register.
	ClassIndirect
	// ClassIndirectCall is a call through a register.
	ClassIndirectCall
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSeq:
		return "Seq"
	case ClassDirectCond:
		return "DirectCond"
	case ClassDirectUncond:
		return "DirectUncond"
	case ClassCall:
		return "Call"
	case ClassReturn:
		return "Return"
	case ClassIndirect:
		return "IndirectUncond"
	case ClassIndirectCall:
		return "IndirectCall"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsBranch reports whether the class transfers control.
func (c Class) IsBranch() bool { return c != ClassSeq }

// IsShadowEligible reports whether a branch of this class can be decoded
// and inserted by the Shadow Branch Decoder: the target must be
// computable without execution-time register state, which limits Skia to
// direct unconditional jumps, calls, and returns (paper Section 2.4).
func (c Class) IsShadowEligible() bool {
	return c == ClassDirectUncond || c == ClassCall || c == ClassReturn
}

// Op enumerates VLX operations at the semantic level. Many opcodes map to
// the same Op with different operand encodings.
type Op uint8

const (
	OpInvalid Op = iota
	OpNop
	OpALUReg   // register/register arithmetic
	OpALUImm   // register/immediate arithmetic
	OpMovImm   // move immediate into register
	OpMovReg   // register/register move
	OpLoad     // memory load
	OpStore    // memory store
	OpPush     // push register
	OpPop      // pop register
	OpIncDec   // increment/decrement register
	OpLea      // address generation
	OpTest     // compare/test, sets condition state
	OpJcc      // conditional jump, rel8 or rel32
	OpJmp      // unconditional jump, rel8 or rel32
	OpCall     // direct call, rel32
	OpRet      // return, optionally with imm16 stack adjustment
	OpJmpInd   // indirect jump through register
	OpCallInd  // indirect call through register
	OpHalt     // stop the emulator (end of workload main loop)
	OpSysEnter // models a syscall-like serialisation point
)

var opNames = [...]string{
	OpInvalid:  "invalid",
	OpNop:      "nop",
	OpALUReg:   "alu",
	OpALUImm:   "alui",
	OpMovImm:   "movi",
	OpMovReg:   "mov",
	OpLoad:     "load",
	OpStore:    "store",
	OpPush:     "push",
	OpPop:      "pop",
	OpIncDec:   "incdec",
	OpLea:      "lea",
	OpTest:     "test",
	OpJcc:      "jcc",
	OpJmp:      "jmp",
	OpCall:     "call",
	OpRet:      "ret",
	OpJmpInd:   "jmpind",
	OpCallInd:  "callind",
	OpHalt:     "halt",
	OpSysEnter: "sysenter",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is one decoded VLX instruction.
type Inst struct {
	// PC is the address the instruction was decoded from.
	PC uint64
	// Len is the total encoded length in bytes, including prefixes.
	Len uint8
	// Op is the semantic operation.
	Op Op
	// Class is the control-flow class.
	Class Class
	// Reg and Reg2 are register operands where meaningful.
	Reg, Reg2 uint8
	// Imm holds the sign-extended immediate or displacement operand.
	Imm int64
	// RelOff is the PC-relative branch offset for direct branches.
	RelOff int32
	// NumPrefixes counts leading prefix bytes.
	NumPrefixes uint8
}

// NextPC returns the fall-through address.
func (in Inst) NextPC() uint64 { return in.PC + uint64(in.Len) }

// BranchTarget returns the statically-known target of a direct branch
// (DirectCond, DirectUncond, Call). For other classes it returns 0 and
// false: returns and indirect branches need runtime state.
func (in Inst) BranchTarget() (uint64, bool) {
	switch in.Class {
	case ClassDirectCond, ClassDirectUncond, ClassCall:
		return uint64(int64(in.NextPC()) + int64(in.RelOff)), true
	}
	return 0, false
}

// Prefix bytes. Up to MaxPrefixes of these may precede an opcode; they do
// not change semantics in VLX but they change the length, which is what
// matters for shadow decoding ambiguity.
const (
	PrefixOpSize   = 0x66
	PrefixAddrSize = 0x67
	PrefixLock     = 0xF0
	MaxPrefixes    = 3
)

// IsPrefix reports whether b is a legal prefix byte.
func IsPrefix(b byte) bool {
	return b == PrefixOpSize || b == PrefixAddrSize || b == PrefixLock
}

// Mod byte helpers. The mod byte follows x86 ModRM loosely:
//
//	bits 7..6  mod: 0=reg-reg, 1=mem+disp8, 2=mem+disp32, 3=reg-only
//	bits 5..3  reg
//	bits 2..0  rm
const (
	modRegReg  = 0
	modDisp8   = 1
	modDisp32  = 2
	modRegOnly = 3
)

func modOf(b byte) int   { return int(b >> 6) }
func regOf(b byte) uint8 { return (b >> 3) & 7 }
func rmOf(b byte) uint8  { return b & 7 }

// dispLen returns the number of displacement bytes implied by a mod byte.
func dispLen(mod int) int {
	switch mod {
	case modDisp8:
		return 1
	case modDisp32:
		return 4
	}
	return 0
}

// DecodeError describes a failed decode.
type DecodeError struct {
	PC     uint64
	Byte   byte
	Reason string
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: invalid instruction at %#x (byte %#02x): %s", e.PC, e.Byte, e.Reason)
}

// fail is decode's non-allocating failure return: the offending byte
// plus a static reason string. Decode wraps it in a *DecodeError for
// callers that want a real error; TryDecode and LengthAt do not pay for
// one.
func fail(b byte, reason string) (Inst, byte, string) {
	return Inst{}, b, reason
}

func le16(b []byte) int64 { return int64(int16(uint16(b[0]) | uint16(b[1])<<8)) }

func le32(b []byte) int64 {
	return int64(int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24))
}

// Decode decodes a single instruction from code, which must contain the
// bytes starting at address pc. It returns the decoded instruction or a
// *DecodeError if the byte sequence is not a valid VLX instruction or is
// truncated by the end of code.
//
// Decode is deliberately strict: bytes that do not begin a defined opcode
// fail, which is what gives the Shadow Branch Decoder's Path Validation
// phase its pruning power (an invalid decode kills a candidate path).
func Decode(code []byte, pc uint64) (Inst, error) {
	in, b, reason := decode(code, pc)
	if reason != "" {
		return Inst{}, &DecodeError{PC: pc, Byte: b, Reason: reason}
	}
	return in, nil
}

// TryDecode is Decode without the error value: ok is false exactly where
// Decode would return a *DecodeError. Decoders that treat failure as
// data rather than an exceptional condition — the Shadow Branch
// Decoder's path validation prunes candidate paths by failing decodes
// millions of times per simulated window — use this entry point so the
// common case never allocates.
//skia:noalloc
func TryDecode(code []byte, pc uint64) (Inst, bool) {
	in, _, reason := decode(code, pc)
	return in, reason == ""
}

// decode is the allocation-free core shared by Decode, TryDecode, and
// LengthAt. A non-empty reason (always a static string literal) signals
// failure, with b the offending byte.
func decode(code []byte, pc uint64) (Inst, byte, string) {
	if len(code) == 0 {
		return fail(0, "empty")
	}
	i := 0
	nprefix := 0
	for i < len(code) && IsPrefix(code[i]) {
		nprefix++
		if nprefix > MaxPrefixes {
			return fail(code[i], "too many prefixes")
		}
		i++
	}
	if i >= len(code) {
		return fail(code[i-1], "prefixes run off end")
	}

	in := Inst{PC: pc, NumPrefixes: uint8(nprefix)}
	op := code[i]
	i++

	// need reports whether n more bytes are available; on success the
	// caller may index code[i : i+n].
	need := func(n int) bool { return i+n <= len(code) }

	finish := func(op Op, class Class) (Inst, byte, string) {
		in.Op = op
		in.Class = class
		if i > MaxInstLen {
			return fail(code[0], "instruction exceeds 15 bytes")
		}
		in.Len = uint8(i)
		return in, 0, ""
	}

	// withMod decodes a mod byte plus displacement; returns ok.
	withMod := func() bool {
		if !need(1) {
			return false
		}
		m := code[i]
		i++
		in.Reg = regOf(m)
		in.Reg2 = rmOf(m)
		dl := dispLen(modOf(m))
		if !need(dl) {
			return false
		}
		switch dl {
		case 1:
			in.Imm = int64(int8(code[i]))
		case 4:
			in.Imm = le32(code[i:])
		}
		i += dl
		return true
	}

	switch {
	case op == 0x90:
		return finish(OpNop, ClassSeq)

	case op >= 0x40 && op <= 0x4F: // INC r (0x40-47), DEC r (0x48-4F)
		in.Reg = op & 7
		return finish(OpIncDec, ClassSeq)

	case op >= 0x50 && op <= 0x57: // PUSH r
		in.Reg = op & 7
		return finish(OpPush, ClassSeq)

	case op >= 0x58 && op <= 0x5F: // POP r
		in.Reg = op & 7
		return finish(OpPop, ClassSeq)

	case op == 0x01 || op == 0x09 || op == 0x21 || op == 0x29 || op == 0x31 || op == 0x39:
		// ALU reg/reg family (add/or/and/sub/xor/cmp) with mod byte.
		if !withMod() {
			return fail(op, "truncated alu modbyte")
		}
		if op == 0x39 {
			return finish(OpTest, ClassSeq)
		}
		return finish(OpALUReg, ClassSeq)

	case op == 0x81: // ALU r, imm32
		if !withMod() || !need(4) {
			return fail(op, "truncated alu imm32")
		}
		in.Imm = le32(code[i:])
		i += 4
		return finish(OpALUImm, ClassSeq)

	case op == 0x83: // ALU r, imm8
		if !withMod() || !need(1) {
			return fail(op, "truncated alu imm8")
		}
		in.Imm = int64(int8(code[i]))
		i++
		return finish(OpALUImm, ClassSeq)

	case op == 0x85: // TEST r, r
		if !withMod() {
			return fail(op, "truncated test modbyte")
		}
		return finish(OpTest, ClassSeq)

	case op == 0x88 || op == 0x8A: // STORE / LOAD byte with mod
		if !withMod() {
			return fail(op, "truncated mov8 modbyte")
		}
		if op == 0x88 {
			return finish(OpStore, ClassSeq)
		}
		return finish(OpLoad, ClassSeq)

	case op == 0x89 || op == 0x8B: // STORE / LOAD word with mod
		if !withMod() {
			return fail(op, "truncated mov modbyte")
		}
		if op == 0x89 {
			return finish(OpStore, ClassSeq)
		}
		return finish(OpLoad, ClassSeq)

	case op == 0x8D: // LEA r, [r+disp]
		if !withMod() {
			return fail(op, "truncated lea")
		}
		return finish(OpLea, ClassSeq)

	case op >= 0xB0 && op <= 0xB7: // MOV r, imm8
		in.Reg = op & 7
		if !need(1) {
			return fail(op, "truncated movi8")
		}
		in.Imm = int64(int8(code[i]))
		i++
		return finish(OpMovImm, ClassSeq)

	case op >= 0xB8 && op <= 0xBF: // MOV r, imm32
		in.Reg = op & 7
		if !need(4) {
			return fail(op, "truncated movi32")
		}
		in.Imm = le32(code[i:])
		i += 4
		return finish(OpMovImm, ClassSeq)

	case op == 0xC6: // MOV [r+disp], imm8
		if !withMod() || !need(1) {
			return fail(op, "truncated store imm8")
		}
		in.Imm = int64(int8(code[i]))
		i++
		return finish(OpStore, ClassSeq)

	case op == 0xC7: // MOV [r+disp], imm32
		if !withMod() || !need(4) {
			return fail(op, "truncated store imm32")
		}
		in.Imm = le32(code[i:])
		i += 4
		return finish(OpStore, ClassSeq)

	case op >= 0x70 && op <= 0x7F: // Jcc rel8
		if !need(1) {
			return fail(op, "truncated jcc rel8")
		}
		in.Reg = op & 0xF // condition code
		in.RelOff = int32(int8(code[i]))
		i++
		return finish(OpJcc, ClassDirectCond)

	case op == 0xEB: // JMP rel8
		if !need(1) {
			return fail(op, "truncated jmp rel8")
		}
		in.RelOff = int32(int8(code[i]))
		i++
		return finish(OpJmp, ClassDirectUncond)

	case op == 0xE9: // JMP rel32
		if !need(4) {
			return fail(op, "truncated jmp rel32")
		}
		in.RelOff = int32(le32(code[i:]))
		i += 4
		return finish(OpJmp, ClassDirectUncond)

	case op == 0xE8: // CALL rel32
		if !need(4) {
			return fail(op, "truncated call rel32")
		}
		in.RelOff = int32(le32(code[i:]))
		i += 4
		return finish(OpCall, ClassCall)

	case op == 0xC3: // RET
		return finish(OpRet, ClassReturn)

	case op == 0xC2: // RET imm16
		if !need(2) {
			return fail(op, "truncated ret imm16")
		}
		in.Imm = le16(code[i:])
		i += 2
		return finish(OpRet, ClassReturn)

	case op == 0xFF: // indirect jmp/call through register, selected by reg field
		if !need(1) {
			return fail(op, "truncated indirect")
		}
		m := code[i]
		i++
		in.Reg = rmOf(m)
		switch regOf(m) {
		case 2:
			return finish(OpCallInd, ClassIndirectCall)
		case 4:
			return finish(OpJmpInd, ClassIndirect)
		}
		return fail(op, "undefined FF /reg extension")

	case op == 0xF4:
		return finish(OpHalt, ClassSeq)

	case op == 0x0F: // two-byte escape
		if !need(1) {
			return fail(op, "truncated 0F escape")
		}
		op2 := code[i]
		i++
		switch {
		case op2 >= 0x80 && op2 <= 0x8F: // Jcc rel32
			if !need(4) {
				return fail(op2, "truncated jcc rel32")
			}
			in.Reg = op2 & 0xF
			in.RelOff = int32(le32(code[i:]))
			i += 4
			return finish(OpJcc, ClassDirectCond)
		case op2 == 0x1F: // long NOP: mod byte + displacement give 3-8 byte NOPs
			if !withMod() {
				return fail(op2, "truncated long nop")
			}
			return finish(OpNop, ClassSeq)
		case op2 == 0x05:
			return finish(OpSysEnter, ClassSeq)
		}
		return fail(op2, "undefined 0F opcode")
	}

	return fail(op, "undefined opcode")
}

// LengthAt is the boundary-only decoder used by the Shadow Branch
// Decoder's Index Computation phase (paper Section 3.2.1). It returns the
// length in bytes of the instruction starting at code[off], or 0 if no
// valid instruction starts there. It never allocates.
//skia:noalloc
func LengthAt(code []byte, off int) int {
	if off < 0 || off >= len(code) {
		return 0
	}
	in, ok := TryDecode(code[off:], 0)
	if !ok {
		return 0
	}
	return int(in.Len)
}

// Disassemble renders an instruction for humans, e.g. "jmp +0x40" or
// "movi r3, 17".
func Disassemble(in Inst) string {
	switch in.Op {
	case OpJcc:
		return fmt.Sprintf("jcc%d %+#x", in.Reg, in.RelOff)
	case OpJmp:
		return fmt.Sprintf("jmp %+#x", in.RelOff)
	case OpCall:
		return fmt.Sprintf("call %+#x", in.RelOff)
	case OpRet:
		if in.Imm != 0 {
			return fmt.Sprintf("ret %d", in.Imm)
		}
		return "ret"
	case OpJmpInd:
		return fmt.Sprintf("jmp *r%d", in.Reg)
	case OpCallInd:
		return fmt.Sprintf("call *r%d", in.Reg)
	case OpMovImm:
		return fmt.Sprintf("movi r%d, %d", in.Reg, in.Imm)
	case OpALUReg:
		return fmt.Sprintf("alu r%d, r%d", in.Reg, in.Reg2)
	case OpALUImm:
		return fmt.Sprintf("alui r%d, %d", in.Reg, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load r%d, [r%d%+d]", in.Reg, in.Reg2, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [r%d%+d], r%d", in.Reg2, in.Imm, in.Reg)
	case OpLea:
		return fmt.Sprintf("lea r%d, [r%d%+d]", in.Reg, in.Reg2, in.Imm)
	case OpPush:
		return fmt.Sprintf("push r%d", in.Reg)
	case OpPop:
		return fmt.Sprintf("pop r%d", in.Reg)
	case OpIncDec:
		return fmt.Sprintf("incdec r%d", in.Reg)
	case OpTest:
		return fmt.Sprintf("test r%d, r%d", in.Reg, in.Reg2)
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	case OpSysEnter:
		return "sysenter"
	}
	return in.Op.String()
}
