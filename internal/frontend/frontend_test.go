package frontend

import (
	"math/bits"
	"testing"

	"repro/internal/emu"
	"repro/internal/workload"
)

// testWorkload generates a small but structurally complete benchmark.
func testWorkload(t testing.TB, mut func(*workload.Profile)) *workload.Workload {
	t.Helper()
	p, err := workload.ByName("voter")
	if err != nil {
		t.Fatal(err)
	}
	p.HotFuncs = 96
	p.ColdFuncs = 260
	if mut != nil {
		mut(&p)
	}
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// drive runs the front-end for n decoded instructions.
func drive(t testing.TB, f *FrontEnd, n uint64) {
	t.Helper()
	var decoded uint64
	for decoded < n && !f.Done() {
		decoded += uint64(f.Step(64))
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
}

func smallCfg(skia bool) Config {
	cfg := DefaultConfig()
	if skia {
		cfg = SkiaConfig()
	}
	// Small BTB so the shrunken test workload still overflows it.
	cfg.BTB.Entries = 1024
	return cfg
}

func TestDecodeMatchesEmulator(t *testing.T) {
	// The front-end must deliver exactly the emulator's instruction
	// stream, in order, regardless of mispredictions along the way.
	w := testWorkload(t, nil)
	f, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	ref := emu.New(w)
	var checked uint64
	for checked < 100_000 && !f.Done() {
		n := f.Step(64)
		for i := 0; i < n; i++ {
			want, err := ref.Step()
			if err != nil {
				t.Fatal(err)
			}
			_ = want
			checked++
		}
	}
	// The decode counter must match exactly what we pulled from ref.
	if got := f.Stats().Decoded; got != checked {
		t.Fatalf("frontend decoded %d, reference stepped %d", got, checked)
	}
	if f.Stats().ForcedResyncs != 0 {
		t.Fatalf("forced resyncs: %d (modeling bug)", f.Stats().ForcedResyncs)
	}
}

func TestBTBMissesOccurAndSBBCovers(t *testing.T) {
	w := testWorkload(t, nil)

	base, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, base, 400_000)
	bs := base.Stats()
	if bs.BTBMissTotal() == 0 {
		t.Fatal("baseline produced no BTB misses; workload lacks pressure")
	}
	if bs.SBBCoveredTotal() != 0 {
		t.Error("baseline must not report SBB coverage")
	}

	skia, err := New(smallCfg(true), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, skia, 400_000)
	ss := skia.Stats()
	if ss.SBBCoveredTotal() == 0 {
		t.Fatal("Skia covered no BTB misses")
	}
	if ss.SBBCoveredU == 0 {
		t.Error("no U-SBB coverage")
	}
	if ss.SBDInserts == 0 {
		t.Error("SBD inserted nothing")
	}
	// Re-steers must shrink: that is the whole mechanism.
	if ss.DecodeResteers >= bs.DecodeResteers {
		t.Errorf("decode resteers did not shrink: %d -> %d", bs.DecodeResteers, ss.DecodeResteers)
	}
}

func TestBTBMissL1IHitFractionHigh(t *testing.T) {
	// The paper's motivating observation: the majority of BTB misses
	// land on L1-I-resident lines.
	w := testWorkload(t, nil)
	f, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 400_000)
	s := f.Stats()
	if s.BTBMissTotal() < 100 {
		t.Skip("too few misses to measure the fraction")
	}
	frac := float64(s.BTBMissL1IHit) / float64(s.BTBMissTotal())
	if frac < 0.5 {
		t.Errorf("only %.0f%% of BTB misses were L1-I resident; paper reports ~75%%", frac*100)
	}
}

func TestSkiaNeverBreaksCorrectness(t *testing.T) {
	// Whatever the SBB contains (including bogus entries), the decoded
	// stream must stay identical to the architectural one; only timing
	// may differ.
	w := testWorkload(t, nil)
	f, err := New(smallCfg(true), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 300_000)
	if f.Stats().ForcedResyncs != 0 {
		t.Errorf("forced resyncs with Skia: %d", f.Stats().ForcedResyncs)
	}
	// Phantoms may occur (bogus SBB entries) but must be bounded.
	s := f.Stats()
	if s.PhantomBranches > s.Decoded/1000 {
		t.Errorf("phantom rate implausible: %d in %d insts", s.PhantomBranches, s.Decoded)
	}
}

func TestBogusInsertRateLow(t *testing.T) {
	// Section 3.2.2: bogus branches must be a tiny fraction of inserts.
	w := testWorkload(t, nil)
	f, err := New(smallCfg(true), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 400_000)
	s := f.Stats()
	if s.SBDInserts == 0 {
		t.Fatal("no inserts")
	}
	rate := float64(s.SBDBogusInserts) / float64(s.SBDInserts)
	if rate > 0.01 {
		t.Errorf("bogus insert rate %.4f too high (paper: ~0.000002)", rate)
	}
}

func TestResetStats(t *testing.T) {
	w := testWorkload(t, nil)
	f, err := New(smallCfg(true), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 50_000)
	f.ResetStats()
	s := f.Stats()
	if s.Decoded != 0 || s.BTBMissTotal() != 0 || s.DecodeResteers != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	// Learned state must survive: after reset, misses should be rarer
	// than in a cold run of the same length.
	drive(t, f, 50_000)
	warm := f.Stats().BTBMissTotal()
	cold, err := New(smallCfg(true), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, cold, 50_000)
	if warm > cold.Stats().BTBMissTotal() {
		t.Errorf("warm run (%d misses) worse than cold run (%d)", warm, cold.Stats().BTBMissTotal())
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := testWorkload(t, nil)
	run := func() Stats {
		f, err := New(smallCfg(true), w)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, f, 200_000)
		return f.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulation is not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestWrongPathBlocksExist(t *testing.T) {
	// Execute re-steers leave the IAG running down the wrong path; the
	// model must actually produce wrong-path FTQ entries.
	w := testWorkload(t, nil)
	f, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 200_000)
	s := f.Stats()
	if s.ExecResteers == 0 {
		t.Skip("no execute re-steers in window")
	}
	if s.WrongPathBlocks == 0 {
		t.Error("execute re-steers without wrong-path blocks: wrong-path modeling is off")
	}
}

func TestDecoderIdleAccounting(t *testing.T) {
	w := testWorkload(t, nil)
	f, err := New(smallCfg(false), w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 200_000)
	s := f.Stats()
	if s.DecodeIdleCycles == 0 {
		t.Error("no decoder idle cycles in a front-end-bound workload")
	}
	if s.DecodeIdleFetchCycles+s.DecodeIdleResteerCycles != s.DecodeIdleCycles {
		t.Errorf("idle split %d+%d != total %d",
			s.DecodeIdleFetchCycles, s.DecodeIdleResteerCycles, s.DecodeIdleCycles)
	}
	if s.DecodeIdleCycles >= f.Cycle() {
		t.Errorf("idle cycles %d >= total cycles %d", s.DecodeIdleCycles, f.Cycle())
	}
}

func TestTailOnlyAndHeadOnly(t *testing.T) {
	w := testWorkload(t, nil)
	for _, variant := range []struct {
		name       string
		head, tail bool
	}{{"head", true, false}, {"tail", false, true}} {
		cfg := smallCfg(true)
		cfg.SBD.Head = variant.head
		cfg.SBD.Tail = variant.tail
		f, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, f, 300_000)
		s := f.SBD().Stats()
		if variant.head && s.TailRegions != 0 {
			t.Errorf("%s: tail decoder ran", variant.name)
		}
		if variant.tail && s.HeadRegions != 0 {
			t.Errorf("%s: head decoder ran", variant.name)
		}
		if f.Stats().SBDInserts == 0 {
			t.Errorf("%s: no inserts", variant.name)
		}
	}
}

func TestSBDToBTBAblation(t *testing.T) {
	w := testWorkload(t, nil)
	cfg := smallCfg(true)
	cfg.SBDToBTB = true
	f, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if f.SBB() != nil {
		t.Fatal("SBDToBTB ablation should not build an SBB")
	}
	drive(t, f, 200_000)
	if f.Stats().SBDInserts == 0 {
		t.Error("ablation inserted nothing into the BTB")
	}
	if f.Stats().SBBCoveredTotal() != 0 {
		t.Error("no SBB exists, so nothing can be SBB-covered")
	}
}

func TestCandidateMaskMerge(t *testing.T) {
	mask := func(offs ...uint8) uint64 {
		var m uint64
		for _, o := range offs {
			m |= 1 << o
		}
		return m
	}
	iterate := func(m uint64) []uint8 {
		var out []uint8
		for ; m != 0; m &= m - 1 {
			out = append(out, uint8(bits.TrailingZeros64(m)))
		}
		return out
	}
	cases := []struct {
		static, extra, want []uint8
	}{
		{[]uint8{1, 5, 9}, nil, []uint8{1, 5, 9}},
		{nil, []uint8{3}, []uint8{3}},
		{[]uint8{1, 5}, []uint8{3, 7}, []uint8{1, 3, 5, 7}},
		{[]uint8{1, 5}, []uint8{1, 5}, []uint8{1, 5}},
		{[]uint8{5}, []uint8{1}, []uint8{1, 5}},
	}
	for i, c := range cases {
		got := iterate(mask(c.static...) | mask(c.extra...))
		if len(got) != len(c.want) {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: got %v want %v", i, got, c.want)
				break
			}
		}
	}
}

func TestInfiniteBTBEliminatesMisses(t *testing.T) {
	w := testWorkload(t, nil)
	cfg := smallCfg(false)
	cfg.BTB.Infinite = true
	f, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 100_000) // warm
	f.ResetStats()
	drive(t, f, 200_000)
	s := f.Stats()
	// After warmup, an infinite BTB only misses on first encounters.
	frac := float64(s.BTBMissTotal()) / float64(s.TakenBranches)
	if frac > 0.02 {
		t.Errorf("infinite BTB still misses %.1f%% of taken branches", frac*100)
	}
}

func BenchmarkFrontEndStep(b *testing.B) {
	w := testWorkload(b, nil)
	f, err := New(SkiaConfig(), w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step(64)
		if f.Done() {
			b.Fatal("workload ended")
		}
	}
}

func TestShadowCondExtension(t *testing.T) {
	// The IncludeConditionals extension must run correctly: shadow
	// conditionals enter the U-SBB, get direction-predicted at the IAG,
	// and never corrupt the decoded stream.
	w := testWorkload(t, nil)
	cfg := smallCfg(true)
	cfg.SBD.IncludeConditionals = true
	f, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 300_000)
	s := f.Stats()
	if s.ForcedResyncs != 0 {
		t.Fatalf("forced resyncs with the extension: %d", s.ForcedResyncs)
	}
	if s.SBDInserts == 0 || s.SBBCoveredTotal() == 0 {
		t.Error("extension run shows no SBB activity")
	}
}
