package frontend

import "testing"

// TestExtraOffsBounded checks the shadow-offset side table stays
// footprint-flat over a long run. Each entry exists only while a
// shadow-discovered branch from that line is live in the SBB — the
// SBB's OnRemove hook prunes the bit on eviction, invalidation, and
// refresh-with-a-different-PC — so the number of tracked lines can
// never exceed the SBB's capacity, however long the simulation runs.
func TestExtraOffsBounded(t *testing.T) {
	w := testWorkload(t, nil)
	cfg := smallCfg(true)
	f, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	bound := cfg.SBB.UEntries + cfg.SBB.REntries

	drive(t, f, 100_000) // warm: populate SBB and side table
	n1 := f.ExtraOffLines()
	if n1 > bound {
		t.Fatalf("extraOffs tracks %d lines after warmup, SBB holds at most %d entries", n1, bound)
	}
	// Real shadow branches are already in the workload's static branch
	// mask; the side table only tracks bogus ones (misaligned decode
	// paths), so small counts — including zero — are expected.
	t.Logf("extraOffs after warmup: %d lines (bound %d)", n1, bound)

	// Footprint must be flat from here: more simulated instructions
	// churn the SBB but cannot grow the table past its capacity bound.
	for i := 0; i < 4; i++ {
		drive(t, f, 100_000)
		if n := f.ExtraOffLines(); n > bound {
			t.Fatalf("after %d extra instructions: extraOffs tracks %d lines, bound %d",
				(i+1)*100_000, n, bound)
		}
	}
}

// TestExtraOffsBoundedSBDToBTB covers the ablation mode: with no SBB
// there is no pruning hook, so the side table may grow — but only to
// the number of branch-free-prefix lines in the program image, never
// with simulation length.
func TestExtraOffsBoundedSBDToBTB(t *testing.T) {
	w := testWorkload(t, nil)
	cfg := smallCfg(true)
	cfg.SBDToBTB = true
	f, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 200_000)
	n1 := f.ExtraOffLines()
	drive(t, f, 200_000)
	n2 := f.ExtraOffLines()
	// Growth must have saturated: the table is keyed by program line,
	// and the program does not grow.
	if n2 > n1+n1/10 {
		t.Errorf("extraOffs still growing in steady state: %d -> %d lines", n1, n2)
	}
	maxLines := len(w.Prog.Code)/64 + 1
	if n2 > maxLines {
		t.Errorf("extraOffs tracks %d lines, program only has %d", n2, maxLines)
	}
}
