package frontend

import (
	"fmt"
	"math/bits"

	"repro/internal/attrib"
	"repro/internal/btb"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/ftq"
	"repro/internal/isa"
	"repro/internal/ittage"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/ras"
	"repro/internal/tage"
	"repro/internal/workload"
)

// LineFetch records one cache line covered by a block and whether it
// was already L1-I resident when the block's prefetch was issued.
type LineFetch struct {
	Addr        uint64
	WasResident bool
}

// maxBlockLineSpan bounds Block's inline line-fetch storage. A block
// covers at most Config.MaxBlockLines lines plus one for a terminator
// whose fall-through straddles into the next line.
const maxBlockLineSpan = 8

// CondRec is a conditional branch inside a block that the IAG predicted
// not-taken, with the TAGE bookkeeping needed to train at decode.
type CondRec struct {
	PC   uint64
	Pred tage.Prediction
}

// Block is one FTQ entry: a predicted basic block.
type Block struct {
	// Start and End delimit the block's bytes [Start, End).
	Start, End uint64
	// BranchPC is the predicted-taken terminator, 0 for fall-through
	// blocks that simply ran to the line-span cap.
	BranchPC uint64
	// Class is the terminator's branch class.
	Class isa.Class
	// Target is the predicted address of the next block.
	Target uint64
	// TakenPred distinguishes terminated blocks from fall-through ones.
	TakenPred bool
	// ViaSBB marks terminators identified by the SBB after a BTB miss.
	ViaSBB bool
	// EntryIsTarget marks blocks whose Start is a branch target (head
	// shadow decode trigger) rather than sequential continuation.
	EntryIsTarget bool
	// WrongPath marks blocks formed while a re-steer was pending.
	WrongPath bool
	// ReadyAt is the cycle the block's bytes are available to decode.
	ReadyAt uint64
	// Lines and NLines list covered cache lines with
	// residency-at-prefetch. Storage is inline: a block spans at most
	// MaxBlockLines lines plus one more when a straddling terminator's
	// fall-through crosses a line boundary, so a small fixed array
	// removes a per-block heap allocation from the IAG loop (New
	// validates the configured span fits).
	Lines  [maxBlockLineSpan]LineFetch
	NLines int
	// Conds lists predicted-not-taken conditionals inside the block. The
	// backing array is recycled through the front-end's condPool when
	// the block dies.
	Conds []CondRec
	// TermCond is the TAGE bookkeeping for a conditional terminator.
	TermCond tage.Prediction
	// TermInd is the ITTAGE bookkeeping for an indirect terminator.
	TermInd ittage.Prediction
}

// redirectKind distinguishes re-steer timing models.
type redirectKind int

const (
	redirectDecode redirectKind = iota
	redirectExec
)

type redirect struct {
	pc      uint64
	applyAt uint64
	kind    redirectKind
	// cause is the stall attribution charged to every decoder-idle
	// cycle of this re-steer's repair window.
	cause attrib.StallKind
}

type sbdTask struct {
	atCycle  uint64
	head     bool
	lineAddr uint64
	off      int
}

// FrontEnd is the full decoupled front-end for one simulation run. Not
// safe for concurrent use; create one per run.
type FrontEnd struct {
	cfg Config
	w   *workload.Workload
	em  *emu.Emulator

	l1i *cache.Cache
	l2  *cache.Cache
	btb *btb.BTB
	tg  *tage.Predictor
	it  *ittage.Predictor
	rs  *ras.Stack
	sbd *core.SBD
	sbb *core.SBB

	q        *ftq.Queue[Block]
	specPC   uint64
	entryTgt bool // next block starts at a branch target

	cycle        uint64
	iagStallTill uint64
	redir        redirect
	hasRedir     bool

	// cur/hasCur and pending/hasPending are value slots, not pointers:
	// storing &local in a struct field forces the local to escape, which
	// used to heap-allocate once per decoded block and once per executed
	// instruction.
	cur        Block
	hasCur     bool
	curPC      uint64
	idleStreak uint64
	pending    emu.Step
	hasPending bool
	done       bool
	err        error
	// scratch is a per-call decode buffer, dead between Cycle calls.
	//skia:shared-ok transient scratch: fully overwritten before every use, never holds state across cycles
	scratch  []core.ShadowBranch
	sbdTasks []sbdTask
	// extraOffs registers SBB-inserted PCs that are not static branch
	// starts as probe candidates: one bit per byte offset in the line
	// (LineSize = 64). Bits are cleared through the SBB's OnRemove hook
	// when the backing entry leaves the buffer, so the map tracks live
	// SBB content instead of growing for the whole run. (In the SBDToBTB
	// ablation there is no SBB to key off; the map then grows to the set
	// of distinct shadow-decoded PCs, which the program size bounds.)
	extraOffs map[uint64]uint64
	// condPool recycles Conds backing arrays across dead blocks.
	//skia:shared-ok allocation-recycling pool: a clone starting empty re-allocates on first use, results are unaffected
	condPool [][]CondRec
	// dcache memoizes shadow decodes (nil when disabled); invalidated by
	// the L1-I eviction hook.
	dcache *core.DecodeCache
	// warmMemo memoizes shadow-decode results during warm fast-forward,
	// keyed by region. Unlike dcache it is never invalidated: decode
	// results are pure functions of the immutable program bytes, and
	// hit vs. miss is result-identical (only SBD/dcache statistics
	// differ, which warm skipping perturbs freely anyway). Lazily
	// built; not carried across Clone.
	//skia:shared-ok pure-function memo over immutable program bytes: a clone rebuilding it lazily is result-identical
	warmMemo map[warmDecodeKey][]core.ShadowBranch

	// tr, when non-nil, observes re-steers, misses, and shadow-decode
	// events; every emission site nil-checks it so a disabled trace
	// costs one comparison per event.
	//skia:shared-ok observability attachment: Clone's contract is that clones start untraced and callers attach their own
	tr metrics.Tracer

	// at, when non-nil, is the miss-attribution engine: it classifies
	// every BTB miss into a cause and every decoder-idle cycle into a
	// stall account. Same nil-check contract as tr.
	//skia:shared-ok observability attachment: Clone's contract is that clones start unattributed and callers attach their own
	at *attrib.Engine

	stats Stats
}

// New builds a front-end over a generated workload.
func New(cfg Config, w *workload.Workload) (*FrontEnd, error) {
	if cfg.MaxBlockLines+1 > maxBlockLineSpan {
		return nil, fmt.Errorf("frontend: MaxBlockLines %d exceeds the supported span of %d lines", cfg.MaxBlockLines, maxBlockLineSpan-1)
	}
	l1i, err := cache.New(cfg.L1ISize, cfg.L1IWays, program.LineSize)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	l2, err := cache.New(cfg.L2Size, cfg.L2Ways, program.LineSize)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	b, err := btb.New(cfg.BTB)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	f := &FrontEnd{
		cfg:       cfg,
		w:         w,
		em:        emu.New(w),
		l1i:       l1i,
		l2:        l2,
		btb:       b,
		tg:        tage.New(cfg.TAGE),
		it:        ittage.New(cfg.ITTAGE),
		rs:        ras.New(cfg.RASDepth),
		q:         ftq.New[Block](cfg.FTQDepth),
		specPC:    w.Prog.Entry,
		entryTgt:  true,
		extraOffs: make(map[uint64]uint64),
	}
	if cfg.Skia {
		f.sbd = core.NewSBD(cfg.SBD)
		if !cfg.NoDecodeCache {
			f.dcache = core.NewDecodeCache(cfg.DecodeCacheLines, cfg.DecodeCacheDiff)
			f.sbd.AttachCache(f.dcache)
			f.l1i.OnEvict = f.dcache.InvalidateLine
		}
		if !cfg.SBDToBTB {
			sbb, err := core.NewSBB(cfg.SBB)
			if err != nil {
				return nil, fmt.Errorf("frontend: %w", err)
			}
			f.sbb = sbb
			f.sbb.OnRemove = f.pruneShadowOff
		}
	}
	return f, nil
}

// Done reports whether the workload halted or errored.
func (f *FrontEnd) Done() bool { return f.done }

// Err returns the first emulator error, if any.
func (f *FrontEnd) Err() error { return f.err }

// Cycle returns the current cycle number.
func (f *FrontEnd) Cycle() uint64 { return f.cycle }

// Stats returns a copy of the accumulated statistics.
func (f *FrontEnd) Stats() Stats { return f.stats }

// L1I exposes the instruction cache for measurement.
func (f *FrontEnd) L1I() *cache.Cache { return f.l1i }

// L2 exposes the second-level cache (instruction traffic only).
func (f *FrontEnd) L2() *cache.Cache { return f.l2 }

// BTB exposes the branch target buffer for measurement.
func (f *FrontEnd) BTB() *btb.BTB { return f.btb }

// TAGE exposes the direction predictor for measurement.
func (f *FrontEnd) TAGE() *tage.Predictor { return f.tg }

// ITTAGE exposes the indirect predictor for measurement.
func (f *FrontEnd) ITTAGE() *ittage.Predictor { return f.it }

// SBB exposes the shadow branch buffer (nil without Skia).
func (f *FrontEnd) SBB() *core.SBB { return f.sbb }

// SBD exposes the shadow branch decoder (nil without Skia).
func (f *FrontEnd) SBD() *core.SBD { return f.sbd }

// DecodeCache exposes the shadow-decode memo (nil when disabled).
func (f *FrontEnd) DecodeCache() *core.DecodeCache { return f.dcache }

// ExtraOffLines reports how many lines currently carry SBB-discovered
// probe candidates, for footprint tests.
func (f *FrontEnd) ExtraOffLines() int { return len(f.extraOffs) }

// SetTracer attaches (or, with nil, detaches) an event tracer. The
// SBB's eviction hook is wired through to the same tracer.
func (f *FrontEnd) SetTracer(t metrics.Tracer) {
	f.tr = t
	f.wireHooks()
}

// SetAttribution attaches (or, with nil, detaches) a miss-attribution
// engine. The SBB's clock and eviction hooks and the SBD's head-path
// hook are wired through to it.
func (f *FrontEnd) SetAttribution(e *attrib.Engine) {
	f.at = e
	f.wireHooks()
}

// Attribution returns the attached engine (nil when disabled).
func (f *FrontEnd) Attribution() *attrib.Engine { return f.at }

// wireHooks (re)wires component callbacks to whichever of the tracer
// and the attribution engine are attached. Both observers share the
// single SBB eviction hook, so attaching one must not clobber the
// other.
func (f *FrontEnd) wireHooks() {
	if f.sbd != nil {
		if f.at != nil {
			f.sbd.OnHeadPaths = f.at.NoteSBDPaths
		} else {
			f.sbd.OnHeadPaths = nil
		}
	}
	if f.sbb == nil {
		return
	}
	if f.at != nil {
		f.sbb.Clock = func() uint64 { return f.cycle }
	} else {
		f.sbb.Clock = nil
	}
	if f.tr == nil && f.at == nil {
		f.sbb.OnEvict = nil
		return
	}
	f.sbb.OnEvict = func(isU, retired bool, lifetime uint64) {
		if f.tr != nil {
			kind := metrics.EvSBBEvictR
			if isU {
				kind = metrics.EvSBBEvictU
			}
			var arg uint64
			if retired {
				arg = 1
			}
			f.tr.Emit(metrics.Event{Cycle: f.cycle, Kind: kind, Arg: arg})
		}
		if f.at != nil {
			f.at.NoteSBBLifetime(lifetime)
		}
	}
}

// emit records a traced event at the current cycle.
func (f *FrontEnd) emit(k metrics.EventKind, pc, arg uint64) {
	if f.tr != nil {
		f.tr.Emit(metrics.Event{Cycle: f.cycle, Kind: k, PC: pc, Arg: arg})
	}
}

// ResetStats zeroes all statistics (front-end and components) at the
// warmup/measurement boundary without touching learned state.
func (f *FrontEnd) ResetStats() {
	f.stats = Stats{}
	f.l1i.ResetStats()
	f.l2.ResetStats()
	f.btb.ResetStats()
	f.tg.ResetStats()
	f.it.ResetStats()
	if f.sbb != nil {
		f.sbb.ResetStats()
	}
	if f.sbd != nil {
		f.sbd.ResetStats()
	}
}

// peek returns the next true-path step without consuming it.
func (f *FrontEnd) peek() (emu.Step, bool) {
	if !f.hasPending {
		if f.em.Halted() {
			f.done = true
			return emu.Step{}, false
		}
		st, err := f.em.Step()
		if err != nil {
			f.err = err
			f.done = true
			return emu.Step{}, false
		}
		f.pending = st
		f.hasPending = true
	}
	return f.pending, true
}

// consume advances past the peeked step.
func (f *FrontEnd) consume() { f.hasPending = false }

// getConds hands out a recycled Conds backing array (nil when the pool
// is empty; append grows it as before).
func (f *FrontEnd) getConds() []CondRec {
	if n := len(f.condPool); n > 0 {
		s := f.condPool[n-1]
		f.condPool = f.condPool[:n-1]
		return s
	}
	return nil
}

// putConds returns a dead block's Conds storage to the pool. Each
// backing array has exactly one owner at any time (local in formBlock,
// then the FTQ slot, then f.cur), so recycle sites never double-free.
func (f *FrontEnd) putConds(s []CondRec) {
	if cap(s) > 0 {
		f.condPool = append(f.condPool, s[:0])
	}
}

// clearCur retires the current block, recycling its Conds storage. The
// rest of f.cur is left intact: verification paths keep reading block
// fields (never Conds) through a pointer after clearing it.
func (f *FrontEnd) clearCur() {
	if !f.hasCur {
		return
	}
	f.putConds(f.cur.Conds)
	f.cur.Conds = nil
	f.hasCur = false
}

// flushFTQ squashes the queue, recycling every queued block's Conds
// storage first.
func (f *FrontEnd) flushFTQ() {
	for i := 0; i < f.q.Len(); i++ {
		if b, ok := f.q.At(i); ok {
			f.putConds(b.Conds)
		}
	}
	f.q.Flush()
}

// pruneShadowOff clears pc's probe-candidate bit once its SBB entry is
// gone (wired to the SBB's OnRemove hook).
//skia:noalloc
func (f *FrontEnd) pruneShadowOff(pc uint64) {
	la := program.LineAddr(pc)
	m, ok := f.extraOffs[la]
	if !ok {
		return
	}
	m &^= 1 << program.LineOffset(pc)
	if m == 0 {
		delete(f.extraOffs, la)
	} else {
		f.extraOffs[la] = m
	}
}

// Step advances the front-end by one cycle and returns the number of
// true-path instructions decoded (delivered to the backend) this cycle.
// maxDecode lets the caller apply backpressure (ROB full).
//skia:noalloc
func (f *FrontEnd) Step(maxDecode int) int {
	f.cycle++

	// 0. Apply a matured re-steer.
	if f.hasRedir && f.cycle >= f.redir.applyAt {
		f.applyRedirect()
	}

	// 1. Run due shadow-branch decodes (off the critical path).
	if f.sbd != nil {
		f.runSBDTasks()
	}

	// 2. IAG: form predicted blocks into the FTQ.
	if f.cycle >= f.iagStallTill {
		for i := 0; i < 2 && !f.q.Full(); i++ {
			f.q.Push(f.formBlock())
		}
	}

	// 3. Decode: verify the predicted stream against the true stream.
	n := f.decode(maxDecode)

	// Sample end-of-cycle FTQ occupancy for the distribution stats.
	if f.at != nil {
		f.at.NoteCycle(f.q.Len())
	}

	// Safety valve: if the decoder has been starved for implausibly
	// long (far beyond any miss or re-steer latency), force a resync to
	// the true path rather than livelock. A triggered resync indicates
	// a front-end modeling bug, so it is counted and surfaced.
	if n == 0 && maxDecode > 0 {
		f.idleStreak++
		if f.idleStreak > 4096 && !f.hasRedir {
			if st, ok := f.peek(); ok {
				f.stats.ForcedResyncs++
				f.emit(metrics.EvForcedResync, st.Inst.PC, 0)
				f.scheduleRedirect(st.Inst.PC, redirectDecode, attrib.StallResteerOther)
			}
			f.idleStreak = 0
		}
	} else {
		f.idleStreak = 0
	}
	return n
}

// scheduleRedirect arranges a re-steer to pc; cause labels the repair
// window for stall attribution. Decode-stage re-steers flush
// immediately and stall the IAG for the repair window; execute-stage
// re-steers leave the IAG running down the wrong path until the
// branch resolves.
func (f *FrontEnd) scheduleRedirect(pc uint64, kind redirectKind, cause attrib.StallKind) {
	if f.at != nil {
		f.at.NoteResteer(f.specPC, pc)
	}
	switch kind {
	case redirectDecode:
		f.stats.DecodeResteers++
		f.emit(metrics.EvDecodeResteer, pc, 0)
		f.flushFTQ()
		f.clearCur()
		f.specPC = pc
		f.entryTgt = true
		f.rs.LoadFrom(f.em.Stack())
		f.tg.SyncSpec()
		f.it.SyncSpec()
		f.iagStallTill = f.cycle + uint64(f.cfg.DecodeResteerPenalty)
		f.redir = redirect{pc: pc, applyAt: f.cycle + uint64(f.cfg.DecodeResteerPenalty), kind: kind, cause: cause}
		f.hasRedir = true
	case redirectExec:
		f.stats.ExecResteers++
		f.emit(metrics.EvExecResteer, pc, 0)
		f.redir = redirect{pc: pc, applyAt: f.cycle + uint64(f.cfg.ExecResteerPenalty), kind: kind, cause: cause}
		f.hasRedir = true
	}
}

// applyRedirect finishes a pending re-steer.
func (f *FrontEnd) applyRedirect() {
	r := f.redir
	f.hasRedir = false
	if r.kind == redirectExec {
		f.flushFTQ()
		f.clearCur()
		f.specPC = r.pc
		f.entryTgt = true
		f.rs.LoadFrom(f.em.Stack())
		f.tg.SyncSpec()
		f.it.SyncSpec()
	}
	// Decode re-steers already redirected the IAG at schedule time.
}

// candidates returns the branch-site byte offsets to probe in a line as
// a bitmask (bit i = byte offset i): the static branch starts plus any
// PCs the SBD has (possibly bogusly) inserted. One OR replaces the
// sorted-slice merge the scan used to allocate for.
//skia:noalloc
func (f *FrontEnd) candidates(lineAddr uint64) uint64 {
	m := f.w.BranchMask(lineAddr)
	if len(f.extraOffs) > 0 {
		m |= f.extraOffs[lineAddr]
	}
	return m
}

// formBlock builds the next predicted basic block from specPC,
// consulting BTB, SBB, TAGE, ITTAGE and RAS, issues its prefetches, and
// schedules shadow decodes.
//skia:noalloc
func (f *FrontEnd) formBlock() Block {
	blk := Block{
		Start:         f.specPC,
		EntryIsTarget: f.entryTgt,
		WrongPath:     f.hasRedir,
		Conds:         f.getConds(),
	}
	pos := f.specPC

scan:
	for ln := 0; ln < f.cfg.MaxBlockLines; ln++ {
		lineAddr := program.LineAddr(pos)
		for m := f.candidates(lineAddr); m != 0; m &= m - 1 {
			pc := lineAddr + uint64(bits.TrailingZeros64(m))
			if pc < pos {
				continue
			}
			if e, ok := f.btb.Lookup(pc); ok {
				if f.terminateViaBTB(&blk, pc, e) {
					break scan
				}
				// Predicted not-taken conditional: continue past it.
				pos = e.FallThrough
				continue
			}
			if f.sbb != nil {
				if u, ok := f.sbb.LookupU(pc); ok {
					if u.IsCond {
						// Extension (IncludeConditionals): a shadow
						// conditional still needs a direction from TAGE
						// before the IAG can follow its target.
						pred := f.tg.Predict(pc)
						f.tg.SpecPush(pred.Taken, pc)
						if !pred.Taken {
							blk.Conds = append(blk.Conds, CondRec{PC: pc, Pred: pred})
							pos = pc + uint64(u.Len)
							continue
						}
						blk.TermCond = pred
						blk.Class = isa.ClassDirectCond
					} else if u.IsCall {
						blk.Class = isa.ClassCall
						f.rs.Push(pc + uint64(u.Len))
					} else {
						blk.Class = isa.ClassDirectUncond
					}
					blk.BranchPC = pc
					blk.Target = u.Target
					blk.TakenPred = true
					blk.ViaSBB = true
					blk.End = pc + uint64(u.Len)
					f.emit(metrics.EvSBBHitU, pc, u.Target)
					break scan
				}
				if f.sbb.LookupR(pc) {
					if tgt, ok := f.rs.Pop(); ok {
						blk.BranchPC = pc
						blk.Target = tgt
						blk.TakenPred = true
						blk.ViaSBB = true
						blk.Class = isa.ClassReturn
						blk.End = pc + 1
						f.emit(metrics.EvSBBHitR, pc, tgt)
						break scan
					}
				}
			}
		}
		// Continue into the next line, never rewinding past a
		// not-taken conditional whose fall-through crossed the line.
		if next := lineAddr + program.LineSize; next > pos {
			pos = next
		}
	}
	if !blk.TakenPred {
		blk.End = pos
		blk.Target = pos
	}

	// Prefetch every covered line, recording residency for the shadow
	// opportunity statistics.
	first := program.LineAddr(blk.Start)
	last := program.LineAddr(blk.End - 1)
	if blk.End <= blk.Start {
		last = first
	}
	// A partial-tag alias can hand the IAG a far-away fall-through; the
	// fetch model covers at most the inline line capacity.
	if (last-first)/program.LineSize >= maxBlockLineSpan {
		last = first + (maxBlockLineSpan-1)*program.LineSize
	}
	fillLat := 0
	for la := first; la <= last; la += program.LineSize {
		resident := f.l1i.Prefetch(la)
		if !resident {
			// The fill comes from the L2 or, on an L2 miss, the L3;
			// concurrent line fills overlap, so the block pays the
			// worst single-line latency.
			lat := f.cfg.L1IMissLatency
			if !f.l2.Prefetch(la) {
				lat = f.cfg.L2MissLatency
			}
			if lat > fillLat {
				fillLat = lat
			}
		}
		blk.Lines[blk.NLines] = LineFetch{Addr: la, WasResident: resident}
		blk.NLines++
	}
	blk.ReadyAt = f.cycle + uint64(f.cfg.FetchLatency) + uint64(fillLat)

	if blk.WrongPath {
		f.stats.WrongPathBlocks++
	} else {
		f.stats.Blocks++
	}

	// Record the block's shadow regions for attribution. This runs even
	// without Skia (nil-checked), so baseline runs can report how many
	// of their BTB misses sat in decodable shadow bytes — the paper's
	// Figure 1/2 observation.
	if f.at != nil {
		if blk.EntryIsTarget {
			if off := program.LineOffset(blk.Start); off > 0 {
				f.at.NoteHead(program.LineAddr(blk.Start), off)
			}
		}
		if blk.TakenPred {
			if off := program.LineOffset(blk.End); off != 0 {
				f.at.NoteTail(program.LineAddr(blk.End), off)
			}
		}
	}

	// Schedule shadow decodes (Skia): the Head region of a
	// branch-target entry line and the Tail region after a taken exit.
	if f.sbd != nil {
		lat := uint64(f.cfg.SBD.Latency)
		if blk.EntryIsTarget {
			if off := program.LineOffset(blk.Start); off > 0 {
				f.sbdTasks = append(f.sbdTasks, sbdTask{
					atCycle: blk.ReadyAt + lat, head: true,
					lineAddr: program.LineAddr(blk.Start), off: off,
				})
			}
		}
		if blk.TakenPred {
			tailStart := blk.End // first byte after the exiting branch
			if off := program.LineOffset(tailStart); off != 0 {
				f.sbdTasks = append(f.sbdTasks, sbdTask{
					atCycle: blk.ReadyAt + lat, head: false,
					lineAddr: program.LineAddr(tailStart), off: off,
				})
			}
		}
	}

	// Predicted-taken terminators enter the speculative path history.
	if blk.TakenPred {
		f.it.SpecPush(blk.BranchPC, blk.Target)
	}

	// Advance the speculative PC.
	f.specPC = blk.Target
	f.entryTgt = blk.TakenPred
	return blk
}

// terminateViaBTB handles a BTB hit during the scan. It returns true
// when the block terminates at pc.
//skia:noalloc
func (f *FrontEnd) terminateViaBTB(blk *Block, pc uint64, e btb.Entry) bool {
	switch e.Class {
	case isa.ClassDirectCond:
		pred := f.tg.Predict(pc)
		f.tg.SpecPush(pred.Taken, pc)
		if !pred.Taken {
			blk.Conds = append(blk.Conds, CondRec{PC: pc, Pred: pred})
			return false
		}
		blk.TermCond = pred
		blk.Target = e.Target
	case isa.ClassDirectUncond:
		blk.Target = e.Target
	case isa.ClassCall:
		f.rs.Push(e.FallThrough)
		blk.Target = e.Target
	case isa.ClassReturn:
		if tgt, ok := f.rs.Pop(); ok {
			blk.Target = tgt
		} else {
			blk.Target = e.Target
		}
	case isa.ClassIndirect, isa.ClassIndirectCall:
		p := f.it.Predict(pc)
		if p.Valid {
			blk.Target = p.Target
		} else {
			blk.Target = e.Target
		}
		blk.TermInd = p
		if e.Class == isa.ClassIndirectCall {
			f.rs.Push(e.FallThrough)
		}
	}
	blk.BranchPC = pc
	blk.Class = e.Class
	blk.TakenPred = true
	blk.End = e.FallThrough
	return true
}

// runSBDTasks executes shadow decodes whose latency has elapsed and
// whose line is still L1-I resident, inserting results into the SBB.
//skia:noalloc
func (f *FrontEnd) runSBDTasks() {
	kept := f.sbdTasks[:0]
	for _, t := range f.sbdTasks {
		if t.atCycle > f.cycle {
			kept = append(kept, t)
			continue
		}
		if !f.l1i.Contains(t.lineAddr) {
			continue // line evicted before the decoder got to it
		}
		line := f.w.Prog.Line(t.lineAddr)
		if line == nil {
			continue
		}
		f.scratch = f.scratch[:0]
		if t.head {
			f.scratch = f.sbd.DecodeHead(line, t.lineAddr, t.off, f.scratch)
		} else {
			f.scratch = f.sbd.DecodeTail(line, t.lineAddr, t.off, f.scratch)
		}
		for _, sb := range f.scratch {
			if f.cfg.SBDToBTB {
				// Ablation: shadow branches go straight into the BTB.
				f.btb.Insert(sb.PC, btb.Entry{
					Target:      sb.Target,
					FallThrough: sb.PC + uint64(sb.Len),
					Class:       sb.Class,
				})
			} else {
				_, resident := f.btb.Probe(sb.PC)
				f.sbb.Insert(sb, resident)
				if f.at != nil {
					f.at.NoteSBBInsert(sb.PC)
				}
			}
			f.stats.SBDInserts++
			if f.tr != nil {
				kind := metrics.EvSBDInsertU
				if sb.Class == isa.ClassReturn {
					kind = metrics.EvSBDInsertR
				}
				f.emit(kind, sb.PC, sb.Target)
			}
			f.noteSBBInsert(sb)
		}
	}
	f.sbdTasks = kept
}

// noteSBBInsert tracks bogus inserts (oracle check) and registers the
// PC as a probe candidate so the IAG scan can see it.
//skia:noalloc
func (f *FrontEnd) noteSBBInsert(sb core.ShadowBranch) {
	in, ok := f.w.InstAt(sb.PC)
	if !ok || in.Class != sb.Class {
		f.stats.SBDBogusInserts++
	}
	la := program.LineAddr(sb.PC)
	bit := uint64(1) << program.LineOffset(sb.PC)
	if f.w.BranchMask(la)&bit != 0 {
		return
	}
	f.extraOffs[la] |= bit
}

// lineResidency returns whether the line containing pc was resident
// when blk was formed.
func lineResidency(blk *Block, pc uint64) bool {
	la := program.LineAddr(pc)
	for _, lf := range blk.Lines[:blk.NLines] {
		if lf.Addr == la {
			return lf.WasResident
		}
	}
	return false
}

// countBTBMiss records a taken branch the BTB failed to identify.
// covered reports whether the SBB supplied the branch in time (the
// block steered through it with matching class, so no re-steer was
// paid); it feeds the attribution taxonomy.
//skia:noalloc
func (f *FrontEnd) countBTBMiss(blk *Block, in isa.Inst, covered bool) {
	switch in.Class {
	case isa.ClassDirectCond:
		f.stats.BTBMissCond++
	case isa.ClassDirectUncond:
		f.stats.BTBMissUncond++
	case isa.ClassCall:
		f.stats.BTBMissCall++
	case isa.ClassReturn:
		f.stats.BTBMissReturn++
	case isa.ClassIndirect, isa.ClassIndirectCall:
		f.stats.BTBMissIndirect++
	}
	resident := lineResidency(blk, in.PC)
	if resident {
		f.stats.BTBMissL1IHit++
	}
	if f.at != nil {
		inSBB := f.sbb != nil && f.sbb.Contains(in.PC, in.Class)
		f.at.ClassifyMiss(in.PC, in.Class, covered, resident, inSBB)
	}
	f.emit(metrics.EvBTBMiss, in.PC, 0)
}

// insertBTB installs the executed taken branch at decode.
func (f *FrontEnd) insertBTB(in isa.Inst, target uint64) {
	f.btb.Insert(in.PC, btb.Entry{Target: target, FallThrough: in.NextPC(), Class: in.Class})
}

// decode verifies up to max instructions of the predicted stream
// against the true stream and returns how many true-path instructions
// were delivered.
//skia:noalloc
func (f *FrontEnd) decode(max int) int {
	if max > f.cfg.DecodeWidth {
		max = f.cfg.DecodeWidth
	}
	delivered := 0
	// idle charges a starved cycle: once to the coarse resteer/fetch
	// counters, and (with attribution) once to exactly one StallKind —
	// this is the sole DecodeIdleCycles increment site, so the stall
	// accounts sum to it by construction.
	idle := func(kind attrib.StallKind) {
		if delivered == 0 {
			f.stats.DecodeIdleCycles++
			if kind <= attrib.StallResteerOther {
				f.stats.DecodeIdleResteerCycles++
			} else {
				f.stats.DecodeIdleFetchCycles++
			}
			if f.at != nil {
				f.at.StallCycle(kind)
			}
		}
	}
	for delivered < max {
		if f.done {
			return delivered
		}
		if f.hasRedir {
			idle(f.redir.cause)
			return delivered
		}
		if !f.hasCur {
			head, ok := f.q.Peek()
			if !ok {
				idle(attrib.StallFTQEmpty)
				return delivered
			}
			if head.ReadyAt > f.cycle {
				idle(fetchStall(&head))
				return delivered
			}
			blk, _ := f.q.Pop()
			st, ok := f.peek()
			if !ok {
				f.putConds(blk.Conds)
				return delivered
			}
			// Accept the block if the next true instruction lies inside
			// it. The true PC may be past blk.Start when the previous
			// block's last instruction straddled the block boundary
			// (fetch regions are byte ranges; decode carries over).
			pc := st.Inst.PC
			switch {
			case pc < blk.Start:
				// Stale block from before a squash; drop it.
				f.putConds(blk.Conds)
				continue
			case blk.TakenPred && pc > blk.BranchPC:
				// The straddling instruction swallowed the predicted
				// terminator: the terminator entry is bogus.
				f.cur = blk
				f.hasCur = true
				f.phantom(pc)
				continue
			case !blk.TakenPred && pc >= blk.End:
				f.putConds(blk.Conds)
				continue
			}
			f.cur = blk
			f.hasCur = true
			f.curPC = pc
		}
		st, ok := f.peek()
		if !ok {
			return delivered
		}
		in := st.Inst

		// Phantom terminator: the predicted branch PC is not on the
		// true instruction stream (next true boundary is past it).
		if f.cur.TakenPred && in.PC > f.cur.BranchPC {
			f.phantom(in.PC)
			continue
		}

		// Deliver this instruction.
		f.consume()
		delivered++
		f.stats.Decoded++

		// True outcomes enter the architectural histories in program
		// order; a re-steer restores the speculative histories from
		// these.
		if in.Class == isa.ClassDirectCond {
			f.tg.ArchPush(st.Taken, in.PC)
		}
		if st.Taken {
			f.stats.TakenBranches++
			f.it.ArchPush(in.PC, st.NextPC)
		}

		if f.cur.TakenPred && in.PC == f.cur.BranchPC {
			f.verifyTerminator(st)
			continue
		}
		// Mid-block instruction.
		f.verifyMidBlock(st)
	}
	return delivered
}

// fetchStall attributes a not-ready FTQ head block: waiting on a line
// fill if any covered line missed the L1-I, otherwise riding the fixed
// fetch pipeline.
func fetchStall(blk *Block) attrib.StallKind {
	for _, lf := range blk.Lines[:blk.NLines] {
		if !lf.WasResident {
			return attrib.StallICacheMiss
		}
	}
	return attrib.StallFetchLatency
}

// phantom handles a predicted-taken terminator that does not exist on
// the true path: a BTB alias or a bogus SBB entry. Decode detects it
// and re-steers to truePC, the sequential continuation.
func (f *FrontEnd) phantom(truePC uint64) {
	f.stats.PhantomBranches++
	f.emit(metrics.EvPhantom, f.cur.BranchPC, truePC)
	cause := attrib.StallResteerOther // BTB alias exposed as a phantom
	if f.cur.ViaSBB {
		cause = attrib.StallResteerBogusSBB
		f.stats.BogusSBBUsed++
		if f.sbb != nil {
			f.sbb.Invalidate(f.cur.BranchPC)
		}
	} else {
		f.btb.Invalidate(f.cur.BranchPC)
	}
	f.clearCur()
	f.scheduleRedirect(truePC, redirectDecode, cause)
}

// verifyTerminator checks the true outcome of the block's predicted
// terminator and ends, re-steers, or trains accordingly.
func (f *FrontEnd) verifyTerminator(st emu.Step) {
	blk := &f.cur
	in := st.Inst

	// The terminator PC is a true boundary; the provider entry is only
	// trustworthy if the true instruction has the predicted class.
	// Mismatches come from bogus SBB entries or BTB partial-tag
	// aliases: decode exposes them, invalidates the provider, and
	// handles the true instruction as a freshly discovered branch.
	if in.Class != blk.Class {
		f.stats.PhantomBranches++
		f.emit(metrics.EvPhantom, blk.BranchPC, in.PC)
		cause := attrib.StallResteerOther // BTB alias gave the wrong class
		if blk.ViaSBB {
			cause = attrib.StallResteerBogusSBB
			f.stats.BogusSBBUsed++
			if f.sbb != nil {
				f.sbb.Invalidate(blk.BranchPC)
			}
		} else {
			f.btb.Invalidate(blk.BranchPC)
		}
		f.clearCur()
		if st.Taken {
			f.countBTBMiss(blk, in, false)
			f.insertBTB(in, st.NextPC)
			switch in.Class {
			case isa.ClassIndirect, isa.ClassIndirectCall:
				f.scheduleRedirect(st.NextPC, redirectExec, cause)
			case isa.ClassDirectCond:
				pred := f.tg.Predict(in.PC)
				f.tg.Update(in.PC, pred, true)
				f.scheduleRedirect(st.NextPC, redirectDecode, cause)
			default:
				f.scheduleRedirect(st.NextPC, redirectDecode, cause)
			}
			return
		}
		if in.Class == isa.ClassDirectCond {
			pred := f.tg.Predict(in.PC)
			f.tg.Update(in.PC, pred, false)
		}
		f.scheduleRedirect(st.NextPC, redirectDecode, cause)
		return
	}

	// Train predictors with the truth.
	switch in.Class {
	case isa.ClassDirectCond:
		f.tg.Update(in.PC, blk.TermCond, st.Taken)
		if !st.Taken {
			// Predicted taken, actually not taken: direction
			// misprediction resolved at execute.
			f.stats.CondMispredicts++
			f.clearCur()
			f.scheduleRedirect(st.NextPC, redirectExec, attrib.StallResteerMispredict)
			return
		}
	case isa.ClassIndirect, isa.ClassIndirectCall:
		f.it.Update(in.PC, blk.TermInd, st.NextPC)
	}

	// Record SBB coverage and BTB miss bookkeeping.
	if blk.ViaSBB {
		f.countBTBMiss(blk, in, true)
		if in.Class == isa.ClassReturn {
			f.stats.SBBCoveredR++
		} else {
			f.stats.SBBCoveredU++
		}
		if f.sbb != nil {
			f.sbb.MarkRetired(in.PC, in.Class)
		}
		// The decoded branch also fills the BTB as usual.
		f.insertBTB(in, st.NextPC)
	}

	if blk.Target == st.NextPC {
		// Fully correct: move to the next block.
		f.clearCur()
		return
	}

	// Right branch, wrong target.
	f.clearCur()
	switch in.Class {
	case isa.ClassDirectCond, isa.ClassDirectUncond, isa.ClassCall:
		// The true target is encoded in the instruction: decode fixes
		// it early and refreshes the stale entry.
		f.stats.StaleBTBTarget++
		f.insertBTB(in, st.NextPC)
		f.scheduleRedirect(st.NextPC, redirectDecode, attrib.StallResteerOther)
	case isa.ClassReturn:
		f.stats.ReturnMispredicts++
		f.emit(metrics.EvReturnMispredict, in.PC, st.NextPC)
		f.scheduleRedirect(st.NextPC, redirectExec, attrib.StallResteerMispredict)
	case isa.ClassIndirect, isa.ClassIndirectCall:
		f.stats.IndirectMispredicts++
		f.insertBTB(in, st.NextPC)
		f.scheduleRedirect(st.NextPC, redirectExec, attrib.StallResteerMispredict)
	}
}

// verifyMidBlock checks an instruction the IAG predicted to be
// non-terminating (sequential, or a not-taken conditional).
func (f *FrontEnd) verifyMidBlock(st emu.Step) {
	blk := &f.cur
	in := st.Inst

	// Train recorded not-taken conditional predictions.
	for i := range blk.Conds {
		if blk.Conds[i].PC == in.PC {
			f.tg.Update(in.PC, blk.Conds[i].Pred, st.Taken)
			if st.Taken {
				// Identified, predicted not-taken, actually taken:
				// direction misprediction, resolved at execute.
				f.stats.CondMispredicts++
				f.clearCur()
				f.scheduleRedirect(st.NextPC, redirectExec, attrib.StallResteerMispredict)
				return
			}
			f.advanceWithin(st)
			return
		}
	}

	if !st.Taken {
		f.advanceWithin(st)
		return
	}

	// A taken branch the IAG did not identify at all: the BTB (and SBB,
	// if present) missed it. This is the event Skia attacks. The repair
	// window is charged to the BTB miss even when a late direction or
	// target lookup also went wrong — absent identification is the root.
	f.countBTBMiss(blk, in, false)
	f.insertBTB(in, st.NextPC) // decode fills the BTB
	f.clearCur()
	switch in.Class {
	case isa.ClassDirectUncond, isa.ClassCall:
		// Target computable at decode: early re-steer.
		f.scheduleRedirect(st.NextPC, redirectDecode, attrib.StallResteerBTBMiss)
	case isa.ClassReturn:
		// Decode sees the return and consults the RAS; model the
		// common case of a correct RAS repair as an early re-steer.
		f.scheduleRedirect(st.NextPC, redirectDecode, attrib.StallResteerBTBMiss)
	case isa.ClassDirectCond:
		// Decode discovers the conditional and asks TAGE late.
		pred := f.tg.Predict(in.PC)
		f.tg.Update(in.PC, pred, true)
		if pred.Taken {
			f.scheduleRedirect(st.NextPC, redirectDecode, attrib.StallResteerBTBMiss)
		} else {
			f.stats.CondMispredicts++
			f.scheduleRedirect(st.NextPC, redirectExec, attrib.StallResteerBTBMiss)
		}
	case isa.ClassIndirect, isa.ClassIndirectCall:
		// Target needs execution.
		f.scheduleRedirect(st.NextPC, redirectExec, attrib.StallResteerBTBMiss)
	}
}

// advanceWithin moves the in-block cursor past a correctly handled
// non-terminating instruction, closing fall-through blocks at their
// end.
func (f *FrontEnd) advanceWithin(st emu.Step) {
	f.curPC = st.NextPC
	if !f.cur.TakenPred && f.curPC >= f.cur.End {
		f.clearCur()
	}
}
