// Package frontend models the decoupled FDIP front-end the paper
// targets (Figure 4): an Instruction Address Generator (IAG) driven by
// the BPU (BTB + TAGE-SC-L + ITTAGE + RAS — and, with Skia enabled, the
// SBB probed in parallel with the BTB), feeding predicted basic blocks
// into a Fetch Target Queue whose entries prefetch the L1-I; a fetch
// stage gated by L1-I residency; and a decode stage that verifies the
// predicted stream against the architecturally executed one, raising
// early (decode) re-steers for branches whose targets are computable at
// decode and late (execute) re-steers for direction and indirect-target
// mispredictions.
//
// The model is execution-driven in the way the paper requires: between
// a misprediction and its resolution the IAG keeps following its wrong
// path, and the prefetches it issues pollute the L1-I.
package frontend

import (
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/ittage"
	"repro/internal/tage"
)

// Config parameterizes the front-end. Defaults follow the paper's
// Table 1 (Alder-Lake-like core).
type Config struct {
	// FTQDepth is the Fetch Target Queue depth in basic blocks.
	FTQDepth int
	// DecodeWidth is the instructions decoded per cycle.
	DecodeWidth int
	// MaxBlockLines caps how many sequential cache lines one predicted
	// basic block may span before the IAG cuts a fall-through block.
	MaxBlockLines int

	// L1ISize and L1IWays size the instruction cache (32KB, 8-way).
	L1ISize, L1IWays int
	// L2Size and L2Ways size the unified L2 the instruction path fills
	// from (Table 1: 1MB, 16-way; only its instruction traffic is
	// modeled).
	L2Size, L2Ways int
	// L1IMissLatency is the fill latency, in cycles, for a prefetch or
	// fetch that misses the L1-I but hits the L2.
	L1IMissLatency int
	// L2MissLatency is the fill latency when the line misses the L2 as
	// well (an L3 hit; Table 1's shared L3).
	L2MissLatency int
	// FetchLatency is the pipeline latency from FTQ head to decode for
	// a resident block.
	FetchLatency int

	// DecodeResteerPenalty is the bubble, in cycles, for an early
	// re-steer raised at decode (paper Figure 7: repair plus refill).
	DecodeResteerPenalty int
	// ExecResteerPenalty is the bubble for a late re-steer raised at
	// execute (direction or indirect-target misprediction). The IAG
	// runs down the wrong path for this window.
	ExecResteerPenalty int

	// RASDepth is the return address stack depth.
	RASDepth int

	// BTB, TAGE, and ITTAGE configure the BPU structures.
	BTB    btb.Config
	TAGE   tage.Config
	ITTAGE ittage.Config

	// Skia enables the Shadow Branch Decoder and Shadow Branch Buffer.
	Skia bool
	// SBD and SBB configure Skia when enabled.
	SBD core.SBDConfig
	SBB core.SBBConfig
	// SBDToBTB is the ablation the paper argues against (Section 4.2):
	// the shadow decoder inserts straight into the BTB instead of the
	// parallel SBB, consuming BTB capacity and risking pollution by
	// bogus branches.
	SBDToBTB bool

	// NoDecodeCache disables the simulator-side memoization of shadow
	// decodes (see core.DecodeCache). The cache is a pure throughput
	// optimization — results and statistics are identical either way —
	// so the zero value keeps it on; the flag exists for differential
	// testing and perf comparison.
	NoDecodeCache bool
	// DecodeCacheDiff runs the decode cache in differential mode: every
	// hit re-decodes fresh and counts disagreements (test-only; slower
	// than no cache at all).
	DecodeCacheDiff bool
	// DecodeCacheLines bounds the decode cache to this many distinct
	// line addresses (0 = core.DefaultDecodeCacheLines). Small bounds
	// force steady-state evictions and free-list churn, which the clone
	// coverage tests use to exercise the cache's recycling paths.
	DecodeCacheLines int
}

// DefaultConfig returns the paper's baseline (Table 1) without Skia.
func DefaultConfig() Config {
	return Config{
		FTQDepth:             24,
		DecodeWidth:          12,
		MaxBlockLines:        2,
		L1ISize:              32 * 1024,
		L1IWays:              8,
		L2Size:               1024 * 1024,
		L2Ways:               16,
		L1IMissLatency:       14,
		L2MissLatency:        40,
		FetchLatency:         2,
		DecodeResteerPenalty: 8,
		ExecResteerPenalty:   18,
		RASDepth:             64,
		BTB:                  btb.DefaultConfig(),
		TAGE:                 tage.DefaultConfig(),
		ITTAGE:               ittage.DefaultConfig(),
		SBD:                  core.DefaultSBDConfig(),
		SBB:                  core.DefaultSBBConfig(),
	}
}

// SkiaConfig returns the paper's Skia configuration: the baseline plus
// the default 12.25KB-class SBB and both shadow decoders.
func SkiaConfig() Config {
	c := DefaultConfig()
	c.Skia = true
	return c
}

// Stats aggregates every front-end event the evaluation needs.
type Stats struct {
	// Blocks and WrongPathBlocks count FTQ entries created on the
	// eventually-true and wrong paths.
	Blocks          uint64
	WrongPathBlocks uint64

	// Decoded counts true-path instructions delivered to the backend.
	Decoded uint64
	// DecodeIdleCycles counts cycles the decoder had nothing to do:
	// split by cause between fetch starvation and re-steer repair.
	DecodeIdleCycles        uint64
	DecodeIdleFetchCycles   uint64
	DecodeIdleResteerCycles uint64

	// Resteers by stage.
	DecodeResteers uint64
	ExecResteers   uint64

	// BTB misses discovered on taken true-path branches, by class.
	BTBMissCond     uint64
	BTBMissUncond   uint64
	BTBMissCall     uint64
	BTBMissReturn   uint64
	BTBMissIndirect uint64
	// BTBMissL1IHit counts BTB misses whose cache line was already
	// L1-I-resident when the block fetching it was formed (the shadow
	// opportunity, Figures 1 and 15).
	BTBMissL1IHit uint64

	// SBBCovered counts taken branches the BTB missed but the SBB
	// identified, so no re-steer was needed, by buffer.
	SBBCoveredU uint64
	SBBCoveredR uint64

	// Mispredictions resolved at execute.
	CondMispredicts     uint64
	IndirectMispredicts uint64
	ReturnMispredicts   uint64
	// StaleBTBTarget counts direct branches whose BTB entry held a
	// wrong target (aliasing or code reuse), fixed at decode.
	StaleBTBTarget uint64
	// PhantomBranches counts predicted-taken terminators that turned
	// out not to be taken branches on the true path (BTB aliases or
	// bogus SBB entries).
	PhantomBranches uint64
	// BogusSBBUsed counts phantoms traced to SBB-supplied entries.
	BogusSBBUsed uint64

	// SBDBogusInserts counts SBB inserts whose PC is not a true
	// instruction boundary or not the claimed branch (oracle-checked;
	// the hardware cannot observe this directly).
	SBDBogusInserts uint64
	// SBDInserts counts all SBB inserts issued by the SBD.
	SBDInserts uint64

	// TakenBranches counts true-path taken branches seen at decode.
	TakenBranches uint64

	// ForcedResyncs counts safety-valve resyncs after implausibly long
	// decoder starvation; nonzero values indicate a modeling bug.
	ForcedResyncs uint64
}

// BTBMissTotal sums the per-class BTB miss counters.
func (s Stats) BTBMissTotal() uint64 {
	return s.BTBMissCond + s.BTBMissUncond + s.BTBMissCall + s.BTBMissReturn + s.BTBMissIndirect
}

// SBBCoveredTotal sums SBB coverage over both buffers.
func (s Stats) SBBCoveredTotal() uint64 { return s.SBBCoveredU + s.SBBCoveredR }
