package frontend

import (
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// Checkpoint/restore for the front-end. Clone produces an independent
// deep copy of the complete simulation state — emulator, caches, BTB,
// direction/target predictors, RAS, SBB/SBD, decode cache, FTQ, and
// every in-flight IAG/decode slot — so a warmed front-end can be
// captured once and re-run many times (config sweeps sharing a warmup
// prefix, sampled simulation, intra-run sharding). FastForward advances
// the architectural path functionally (emulator only) and resyncs the
// speculative state, the cheap skip primitive interval sampling splices
// detail windows with.

// cloneBlock deep-copies one FTQ block: everything is a value except
// the Conds slice, whose backing array is owned by exactly one block
// at a time (see putConds) and so must not be shared across cores.
func cloneBlock(b Block) Block {
	if b.Conds != nil {
		conds := make([]CondRec, len(b.Conds))
		copy(conds, b.Conds)
		b.Conds = conds
	}
	return b
}

// Clone returns an independent deep copy of the front-end over the same
// (immutable) workload. Running either copy never affects the other;
// a clone continued from a checkpoint behaves exactly like the original
// would have (determinism-tested per component in clone_test.go).
//
// Observability attachments do not carry over: the clone starts with no
// tracer and no attribution engine (callers attach their own), and
// every component hook that is a closure over the owner — the L1-I
// eviction hook into the decode cache, the SBB OnRemove pruner, the
// SBD/SBB observer hooks — is re-wired to the clone rather than copied.
func (f *FrontEnd) Clone() *FrontEnd {
	n := &FrontEnd{
		cfg: f.cfg,
		w:   f.w,
		em:  f.em.Clone(),

		l1i: f.l1i.Clone(),
		l2:  f.l2.Clone(),
		btb: f.btb.Clone(),
		tg:  f.tg.Clone(),
		it:  f.it.Clone(),
		rs:  f.rs.Clone(),

		q:        f.q.Clone(cloneBlock),
		specPC:   f.specPC,
		entryTgt: f.entryTgt,

		cycle:        f.cycle,
		iagStallTill: f.iagStallTill,
		redir:        f.redir,
		hasRedir:     f.hasRedir,

		cur:        cloneBlock(f.cur),
		hasCur:     f.hasCur,
		curPC:      f.curPC,
		idleStreak: f.idleStreak,
		pending:    f.pending,
		hasPending: f.hasPending,
		done:       f.done,
		err:        f.err,

		stats: f.stats,
	}
	if f.sbdTasks != nil {
		n.sbdTasks = make([]sbdTask, len(f.sbdTasks))
		copy(n.sbdTasks, f.sbdTasks)
	}
	n.extraOffs = make(map[uint64]uint64, len(f.extraOffs))
	for la, m := range f.extraOffs {
		n.extraOffs[la] = m
	}
	if f.sbd != nil {
		n.sbd = f.sbd.Clone()
	}
	if f.dcache != nil {
		n.dcache = f.dcache.Clone()
		n.sbd.AttachCache(n.dcache)
		n.l1i.OnEvict = n.dcache.InvalidateLine
	}
	if f.sbb != nil {
		n.sbb = f.sbb.Clone()
		if !f.cfg.SBDToBTB {
			n.sbb.OnRemove = n.pruneShadowOff
		}
	}
	// No tracer/attribution on the clone; wireHooks clears the
	// observer-driven component hooks accordingly.
	n.wireHooks()
	return n
}

// FastForward advances the true path by up to n instructions using the
// functional emulator only — no cycles are modeled, no predictor or
// cache state is touched — and resyncs the speculative front-end to the
// new architectural point, exactly like a deep re-steer: FTQ and
// current block squashed, pending re-steer and queued shadow decodes
// dropped, RAS reloaded from the architectural stack, TAGE/ITTAGE
// speculative histories repaired from their committed state.
//
// A pending (executed-but-undelivered) step counts as the first skipped
// instruction. It returns the number of instructions skipped, which is
// short of n only when the workload halts.
func (f *FrontEnd) FastForward(n uint64) uint64 {
	// Squash all in-flight speculative state.
	f.flushFTQ()
	f.clearCur()
	f.hasRedir = false
	f.iagStallTill = 0
	f.idleStreak = 0
	f.sbdTasks = f.sbdTasks[:0]

	var skipped uint64
	if f.hasPending && n > 0 {
		f.consume()
		skipped++
	}
	if n > skipped && !f.em.Halted() {
		ran, err := f.em.Run(n - skipped)
		skipped += ran
		if err != nil {
			f.err = err
			f.done = true
			return skipped
		}
	}
	if f.em.Halted() {
		f.done = true
	}

	// Resync the IAG and predictors to the architectural point.
	f.specPC = f.em.PC()
	f.entryTgt = true
	f.rs.LoadFrom(f.em.Stack())
	f.tg.SyncSpec()
	f.it.SyncSpec()
	return skipped
}

// FastForwardWarm is FastForward with functional warming (the SMARTS
// idiom): while skipping, every committed instruction trains the
// predictors and touches the instruction-cache hierarchy on the true
// path. No cycles are modeled, but the BTB, TAGE, ITTAGE, and cache
// contents keep tracking what detail execution would have learned —
// which removes the cold-microarchitecture bias that pure functional
// skipping leaves in sampled measurements of workloads whose predictors
// are still learning. Statistics counters are perturbed freely (sampled
// runs reset them before measuring). SBB/SBD shadow state is warmed
// too: the head/tail shadow regions detail would have scheduled for
// decode (target-entry lines entered mid-line, lines exited mid-line
// by a taken branch) are decoded inline, so the shadow-branch supply
// is at temperature when measurement starts.
func (f *FrontEnd) FastForwardWarm(n uint64) uint64 {
	// Squash all in-flight speculative state (as FastForward does).
	f.flushFTQ()
	f.clearCur()
	f.hasRedir = false
	f.iagStallTill = 0
	f.idleStreak = 0
	f.sbdTasks = f.sbdTasks[:0]

	var skipped uint64
	if f.hasPending && n > 0 {
		f.consume()
		skipped++
	}
	lastLine := ^uint64(0)
	for skipped < n && !f.em.Halted() {
		st, err := f.em.Step()
		if err != nil {
			f.err = err
			f.done = true
			return skipped
		}
		skipped++
		in := st.Inst
		// The fetch path: FDIP would have prefetched this line.
		if la := program.LineAddr(in.PC); la != lastLine {
			lastLine = la
			if !f.l1i.Prefetch(la) {
				f.l2.Prefetch(la)
			}
		}
		if !in.Class.IsBranch() {
			// Sequential instructions touch no predictor state in detail
			// mode either — identification, history pushes, and BTB fills
			// are all branch-only. Skipping them here keeps the warm
			// fast-forward's cost proportional to the branch density.
			continue
		}

		// Would the IAG have identified this branch? Detail mode only
		// consults and history-pushes predictors for identified branches;
		// unidentified taken branches trigger a re-steer that resyncs the
		// speculative histories from the architectural ones. Replaying
		// that structure matters: TAGE indexes hash the *speculative*
		// history, which drops unidentified not-taken conditionals until
		// the next re-steer, and training with a different history string
		// trains different table entries than detail would.
		_, identified := f.btb.Probe(in.PC)
		if !identified && f.sbb != nil {
			identified = f.sbb.Contains(in.PC, in.Class)
		}

		if in.Class == isa.ClassDirectCond {
			pred := f.tg.Predict(in.PC)
			f.tg.ArchPush(st.Taken, in.PC)
			if identified {
				// The IAG pushes the predicted direction; a wrong one is
				// repaired by the mispredict re-steer's history sync.
				f.tg.SpecPush(pred.Taken, in.PC)
				if pred.Taken != st.Taken {
					f.tg.SyncSpec()
					f.it.SyncSpec()
				}
				if !st.Taken {
					// Detail's IAG scan Lookups every identified
					// not-taken conditional each time a block crosses
					// it, keeping its BTB entry recency-hot.
					f.btb.Lookup(in.PC)
				}
			} else if st.Taken {
				// BTB-miss re-steer.
				f.tg.SyncSpec()
				f.it.SyncSpec()
			}
			f.tg.Update(in.PC, pred, st.Taken)
		}
		if st.Taken {
			f.it.ArchPush(in.PC, st.NextPC)
			if identified {
				f.it.SpecPush(in.PC, st.NextPC)
			} else if in.Class != isa.ClassDirectCond {
				// Unidentified taken branch: decode/exec re-steer.
				f.tg.SyncSpec()
				f.it.SyncSpec()
			}
			switch in.Class {
			case isa.ClassIndirect, isa.ClassIndirectCall:
				p := f.it.Predict(in.PC)
				f.it.Update(in.PC, p, st.NextPC)
				if identified && (!p.Valid || p.Target != st.NextPC) {
					// Indirect target mispredict: exec re-steer.
					f.tg.SyncSpec()
					f.it.SyncSpec()
				}
			}
			// Commit-path identification: a hit refreshes recency, a miss
			// or stale target refills, mirroring decode's BTB fill.
			if e, ok := f.btb.Lookup(in.PC); !ok || e.Target != st.NextPC {
				f.btb.Insert(in.PC, btb.Entry{Target: st.NextPC, FallThrough: in.NextPC(), Class: in.Class})
			}
			// Shadow decode (Skia): detail schedules a Tail decode for
			// the bytes after a taken exit and a Head decode for a
			// branch-target line entered mid-line. Replay both so the
			// SBB tracks what cache-fill decode would have learned.
			if f.sbd != nil {
				if off := program.LineOffset(in.NextPC()); off != 0 {
					f.warmShadowDecode(program.LineAddr(in.NextPC()), off, false)
				}
				if off := program.LineOffset(st.NextPC); off > 0 {
					f.warmShadowDecode(program.LineAddr(st.NextPC), off, true)
				}
			}
		}
	}
	if f.em.Halted() {
		f.done = true
	}

	f.specPC = f.em.PC()
	f.entryTgt = true
	f.rs.LoadFrom(f.em.Stack())
	f.tg.SyncSpec()
	f.it.SyncSpec()
	return skipped
}

// warmDecodeKey identifies one shadow-decode region for the warm-skip
// memo: the line, the region boundary offset within it, and whether it
// is the head or the tail side of that boundary.
type warmDecodeKey struct {
	lineAddr uint64
	off      int8
	head     bool
}

// warmShadowDecode runs one head or tail shadow decode during
// functional warming, mirroring runSBDTasks: the line is brought (or
// kept) resident, decoded, and the results inserted into the SBB (or
// the BTB under the SBDToBTB ablation) with probe-candidate
// registration. Timing-only concerns — the SBD latency and the
// evicted-before-decode race — are not modeled. Decode results are
// memoized for the front-end's lifetime (they are pure functions of
// the immutable program bytes), which keeps the warm skip's cost
// proportional to the distinct regions touched, not to the dynamic
// taken-branch count.
func (f *FrontEnd) warmShadowDecode(lineAddr uint64, off int, head bool) {
	if !f.l1i.Prefetch(lineAddr) {
		f.l2.Prefetch(lineAddr)
	}
	if f.warmMemo == nil {
		f.warmMemo = make(map[warmDecodeKey][]core.ShadowBranch)
	}
	key := warmDecodeKey{lineAddr: lineAddr, off: int8(off), head: head}
	sbs, ok := f.warmMemo[key]
	if !ok {
		line := f.w.Prog.Line(lineAddr)
		if line != nil {
			if head {
				sbs = f.sbd.DecodeHead(line, lineAddr, off, nil)
			} else {
				sbs = f.sbd.DecodeTail(line, lineAddr, off, nil)
			}
		}
		f.warmMemo[key] = sbs
	}
	for _, sb := range sbs {
		if f.cfg.SBDToBTB {
			f.btb.Insert(sb.PC, btb.Entry{
				Target:      sb.Target,
				FallThrough: sb.PC + uint64(sb.Len),
				Class:       sb.Class,
			})
		} else {
			_, resident := f.btb.Probe(sb.PC)
			f.sbb.Insert(sb, resident)
		}
		f.stats.SBDInserts++
		f.noteSBBInsert(sb)
	}
}
