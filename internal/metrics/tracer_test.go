package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingTracerBasics(t *testing.T) {
	tr := NewRingTracer(4)
	for i := uint64(0); i < 3; i++ {
		tr.Emit(Event{Cycle: i, Kind: EvBTBMiss, PC: 0x1000 + i})
	}
	if tr.Total() != 3 || tr.Dropped() != 0 {
		t.Errorf("total/dropped = %d/%d", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Errorf("events = %+v", evs)
	}
}

func TestRingTracerWraparound(t *testing.T) {
	tr := NewRingTracer(4)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(Event{Cycle: i, Kind: EvDecodeResteer})
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d", tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	// Oldest-first: cycles 6,7,8,9.
	for i, e := range evs {
		if e.Cycle != uint64(6+i) {
			t.Errorf("event %d cycle = %d, want %d", i, e.Cycle, 6+i)
		}
	}
}

func TestRingTracerDefaultCapacity(t *testing.T) {
	if c := cap(NewRingTracer(0).buf); c != DefaultRingCapacity {
		t.Errorf("default capacity = %d", c)
	}
}

// TestEventKindsNamed ensures every kind carries a display name and a
// track, so a new kind cannot silently export as an empty row.
func TestEventKindsNamed(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
		if k.Track() >= numTracks || k.Track().String() == "" {
			t.Errorf("kind %s has bad track", k)
		}
	}
}

// TestWriteChromeTrace schema-checks the exported file: a JSON object
// with a traceEvents array whose entries carry the fields the Chrome
// trace_event format requires, with metadata rows naming every track.
func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{Cycle: 10, Kind: EvDecodeResteer, PC: 0x400100},
		{Cycle: 20, Kind: EvSBBHitU, PC: 0x400200, Arg: 0x400300},
		{Cycle: 30, Kind: EvSBBEvictR, Arg: 1},
		{Cycle: 40, Kind: EvPhantom, PC: 0x400400, Arg: 0x400410},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	threads := map[string]bool{}
	var instants int
	for i, e := range top.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event %d lacks required key %q: %v", i, k, e)
			}
		}
		switch e["ph"] {
		case "M":
			if e["name"] == "thread_name" {
				args := e["args"].(map[string]any)
				threads[args["name"].(string)] = true
			}
		case "i":
			instants++
			if e["s"] != "t" {
				t.Errorf("instant event %d lacks thread scope: %v", i, e)
			}
			args, ok := e["args"].(map[string]any)
			if !ok || args["pc"] == nil {
				t.Errorf("instant event %d lacks pc arg: %v", i, e)
			}
		default:
			t.Errorf("event %d has unexpected phase %v", i, e["ph"])
		}
	}
	if instants != len(events) {
		t.Errorf("instant events = %d, want %d", instants, len(events))
	}
	for _, want := range []string{"fetch", "decode", "BTB", "U-SBB", "R-SBB", "RAS"} {
		if !threads[want] {
			t.Errorf("no thread_name metadata for track %q", want)
		}
	}
}

// TestRingTracerChromeTraceMetadata exercises the wrap path end to
// end: overflow a tiny ring, export it, and require the metadata block
// to report the drop count so the truncated trace is self-identifying.
func TestRingTracerChromeTraceMetadata(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: EvBTBMiss, PC: uint64(0x1000 + i)})
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if top.Metadata == nil {
		t.Fatal("no metadata block")
	}
	if got := top.Metadata["events_total"]; got != float64(10) {
		t.Errorf("events_total = %v, want 10", got)
	}
	if got := top.Metadata["events_dropped"]; got != float64(6) {
		t.Errorf("events_dropped = %v, want 6", got)
	}
	if got := top.Metadata["ring_capacity"]; got != float64(4) {
		t.Errorf("ring_capacity = %v, want 4", got)
	}
	var instants int
	for _, e := range top.TraceEvents {
		if e["ph"] == "i" {
			instants++
		}
	}
	if instants != 4 {
		t.Errorf("retained instants = %d, want 4 (ring capacity)", instants)
	}
}

// TestWriteChromeTraceNoMetadataByDefault pins the plain writer's
// output shape: no metadata key unless provided.
func TestWriteChromeTraceNoMetadataByDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []Event{{Kind: EvBTBMiss}}); err != nil {
		t.Fatal(err)
	}
	var top map[string]any
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["metadata"]; ok {
		t.Error("metadata emitted without being provided")
	}
}
