package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed phase of a service request: the sweep service
// records a submit → queue → run → stream span set per job, each span
// carrying the W3C trace identity the client propagated (or a
// self-rooted one the server synthesized). Spans live in wall-clock
// time — unlike Event, which lives in simulated cycles — because they
// measure the service around the simulator, not the simulator itself.
type Span struct {
	// TraceID is the 32-hex-digit W3C trace ID shared by every span of
	// one request chain.
	TraceID string `json:"trace_id"`
	// SpanID is this span's 16-hex-digit ID; ParentID is the enclosing
	// span's ("" for a root).
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the phase: "submit", "queue", "run", "stream".
	Name string `json:"name"`
	// Scope groups spans belonging to one logical unit (a job ID).
	Scope string `json:"scope,omitempty"`
	// Start and End bracket the phase in wall-clock time.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Attrs carries small string attributes (status, shard, …).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// SpanRecorder receives completed spans. The service holds a
// nil-checkable recorder, so disabled tracing costs one nil comparison
// per phase boundary — the same contract Tracer gives the simulator's
// hot path.
type SpanRecorder interface {
	RecordSpan(Span)
}

// SpanRing records the most recent spans in a fixed-capacity ring,
// bounding memory no matter how long the service runs. Unlike
// RingTracer it is safe for concurrent use: spans arrive from HTTP
// handler and worker goroutines.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// DefaultSpanRingCapacity bounds a SpanRing built with capacity <= 0.
const DefaultSpanRingCapacity = 1 << 14

// NewSpanRing returns a ring holding up to cap spans (<= 0 selects
// DefaultSpanRingCapacity).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanRingCapacity
	}
	return &SpanRing{buf: make([]Span, 0, capacity)}
}

// RecordSpan records a completed span, overwriting the oldest once the
// ring is full.
func (r *SpanRing) RecordSpan(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
}

// Total counts all spans recorded, including overwritten ones.
func (r *SpanRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped counts spans lost to ring wraparound.
func (r *SpanRing) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Spans returns the retained spans oldest-first.
func (r *SpanRing) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WriteSpanChromeTrace exports spans as Chrome trace_event JSON: one
// thread per phase name (sorted, so the track layout is
// deterministic), one "X" complete event per span with ts/dur in
// microseconds relative to the earliest span start. meta carries
// capture provenance (trace IDs, drop counts); nil or empty omits the
// block. Perfetto and chrome://tracing load the output directly, the
// same as the simulator's cycle traces.
func WriteSpanChromeTrace(w io.Writer, spans []Span, meta map[string]any) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	if len(meta) > 0 {
		out.Metadata = meta
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "skiaserve"},
	})
	// One thread per distinct phase name, in sorted order.
	names := make([]string, 0, 4)
	seen := make(map[string]int)
	for _, s := range spans {
		if _, ok := seen[s.Name]; !ok {
			seen[s.Name] = 0
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		seen[n] = i + 1
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: i + 1,
				Args: map[string]any{"name": n},
			},
			chromeEvent{
				Name: "thread_sort_index", Phase: "M", PID: 1, TID: i + 1,
				Args: map[string]any{"sort_index": i},
			})
	}
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	for _, s := range spans {
		args := map[string]any{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		if s.Scope != "" {
			args["scope"] = s.Scope
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    uint64(s.Start.Sub(epoch) / time.Microsecond),
			Dur:   uint64(s.Duration() / time.Microsecond),
			PID:   1,
			TID:   seen[s.Name],
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
