package metrics

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler bundles the standard Go profiling hooks every simulator CLI
// exposes: CPU and heap profiles, a runtime execution trace, and a
// net/http/pprof listener for live inspection of long runs.
type Profiler struct {
	// CPUProfile, MemProfile, and Trace are output file paths; empty
	// disables the corresponding hook.
	CPUProfile string
	MemProfile string
	Trace      string
	// PprofAddr is a listen address (e.g. "localhost:6060") for the
	// net/http/pprof debug server; empty disables it.
	PprofAddr string
	// MemProfileRate, when nonzero, overrides runtime.MemProfileRate
	// before the run starts. Allocation audits set it to 1 so the heap
	// profile attributes every allocation instead of a 512KB-interval
	// sample; the default 0 leaves the runtime's setting untouched.
	MemProfileRate int
}

// RegisterFlags installs the conventional flag names on fs.
func (p *Profiler) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.Trace, "trace", "", "write a Go runtime execution trace to this file")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.IntVar(&p.MemProfileRate, "memprofilerate", 0,
		"set runtime.MemProfileRate (1 = record every allocation; 0 = leave the runtime default)")
}

// Start begins the enabled hooks and returns a stop function to run at
// exit (it stops the CPU profile and runtime trace and writes the heap
// profile). The pprof HTTP server, if any, runs until the process
// exits.
func (p *Profiler) Start() (stop func() error, err error) {
	if p.MemProfileRate > 0 {
		// Must happen before the allocations of interest; Start runs
		// ahead of any simulation work, which is early enough.
		runtime.MemProfileRate = p.MemProfileRate
	}
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("metrics: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("metrics: cpuprofile: %w", err)
		}
	}
	if p.Trace != "" {
		traceFile, err = os.Create(p.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("metrics: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("metrics: trace: %w", err)
		}
	}
	if p.PprofAddr != "" {
		go func() {
			// Best-effort: a busy port only costs the debug server.
			if err := http.ListenAndServe(p.PprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "metrics: pprof server: %v\n", err)
			}
		}()
	}
	return func() error {
		cleanup()
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				return fmt.Errorf("metrics: memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("metrics: memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
