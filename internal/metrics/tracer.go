package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventKind classifies one traced front-end event.
type EventKind uint8

const (
	// EvDecodeResteer is an early re-steer raised at decode.
	EvDecodeResteer EventKind = iota
	// EvExecResteer is a late re-steer raised at execute.
	EvExecResteer
	// EvForcedResync is the safety-valve resync after implausibly long
	// decoder starvation (indicates a modeling bug).
	EvForcedResync
	// EvBTBMiss is a taken true-path branch the BTB failed to identify.
	EvBTBMiss
	// EvSBBHitU / EvSBBHitR are SBB lookups that steered the IAG.
	EvSBBHitU
	EvSBBHitR
	// EvSBDInsertU / EvSBDInsertR are shadow-decode results installed
	// into the corresponding SBB.
	EvSBDInsertU
	EvSBDInsertR
	// EvSBBEvictU / EvSBBEvictR are SBB capacity evictions; Arg is 1
	// when the evicted entry had its retired bit set (a useful entry
	// lost, not a possibly-bogus one).
	EvSBBEvictU
	EvSBBEvictR
	// EvPhantom is a predicted-taken terminator exposed as not a branch
	// on the true path (BTB alias or bogus SBB entry).
	EvPhantom
	// EvReturnMispredict is a RAS-supplied target proven wrong.
	EvReturnMispredict

	numEventKinds
)

// Track is a timeline row in the exported trace: one per front-end
// component, matching the paper's block diagram.
type Track uint8

const (
	TrackFetch Track = iota
	TrackDecode
	TrackBTB
	TrackUSBB
	TrackRSBB
	TrackRAS

	numTracks
)

var trackNames = [numTracks]string{
	TrackFetch:  "fetch",
	TrackDecode: "decode",
	TrackBTB:    "BTB",
	TrackUSBB:   "U-SBB",
	TrackRSBB:   "R-SBB",
	TrackRAS:    "RAS",
}

// String returns the track's display name.
func (t Track) String() string { return trackNames[t] }

var kindInfo = [numEventKinds]struct {
	name  string
	track Track
}{
	EvDecodeResteer:    {"decode-resteer", TrackDecode},
	EvExecResteer:      {"exec-resteer", TrackFetch},
	EvForcedResync:     {"forced-resync", TrackFetch},
	EvBTBMiss:          {"btb-miss", TrackBTB},
	EvSBBHitU:          {"sbb-hit", TrackUSBB},
	EvSBBHitR:          {"sbb-hit", TrackRSBB},
	EvSBDInsertU:       {"sbd-insert", TrackUSBB},
	EvSBDInsertR:       {"sbd-insert", TrackRSBB},
	EvSBBEvictU:        {"sbb-evict", TrackUSBB},
	EvSBBEvictR:        {"sbb-evict", TrackRSBB},
	EvPhantom:          {"phantom-branch", TrackDecode},
	EvReturnMispredict: {"return-mispredict", TrackRAS},
}

// String returns the event kind's display name.
func (k EventKind) String() string { return kindInfo[k].name }

// Track returns the timeline the kind renders on.
func (k EventKind) Track() Track { return kindInfo[k].track }

// Event is one traced occurrence. Cycle is simulated time; PC is the
// branch or instruction address involved; Arg carries kind-specific
// detail (a target address, or a 0/1 flag).
type Event struct {
	Cycle uint64
	Kind  EventKind
	PC    uint64
	Arg   uint64
}

// Tracer receives events from the front-end. Implementations must be
// cheap: Emit is called on every re-steer, miss, and shadow-decode
// event. The front-end holds a nil-checkable Tracer, so a disabled
// trace costs one nil comparison per event site.
type Tracer interface {
	Emit(Event)
}

// RingTracer records the most recent events in a fixed-capacity ring,
// bounding memory no matter how long the run. Not safe for concurrent
// use: attach one tracer per core.
type RingTracer struct {
	buf   []Event
	next  int
	total uint64
}

// DefaultRingCapacity bounds a RingTracer built with capacity <= 0.
const DefaultRingCapacity = 1 << 20

// NewRingTracer returns a ring holding up to cap events (<= 0 selects
// DefaultRingCapacity).
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &RingTracer{buf: make([]Event, 0, capacity)}
}

// Emit records an event, overwriting the oldest once the ring is full.
func (t *RingTracer) Emit(e Event) {
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % len(t.buf)
	}
	t.total++
}

// Total counts all events emitted, including overwritten ones.
func (t *RingTracer) Total() uint64 { return t.total }

// Dropped counts events lost to ring wraparound.
func (t *RingTracer) Dropped() uint64 { return t.total - uint64(len(t.buf)) }

// Events returns the retained events oldest-first.
func (t *RingTracer) Events() []Event {
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// WriteChromeTrace exports the ring's retained events with capture
// provenance in the trace metadata: total events emitted, events
// dropped to wraparound, and the ring capacity. A truncated trace is
// thereby self-identifying — consumers can check events_dropped
// instead of silently analyzing a partial window.
func (t *RingTracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceMeta(w, t.Events(), map[string]any{
		"events_total":   t.Total(),
		"events_dropped": t.Dropped(),
		"ring_capacity":  cap(t.buf),
	})
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "M" rows are metadata naming processes/threads, ph "i" rows are
// instant events. Perfetto and chrome://tracing load this directly.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	TS    uint64 `json:"ts"`
	// Dur is the duration of ph "X" complete events (span exports);
	// instant events leave it zero and omitted.
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace file. Metadata, when
// present, records capture provenance (event totals, ring capacity,
// drop counts) so a truncated trace is self-identifying.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteChromeTrace exports events as Chrome trace_event JSON: one
// thread (track) per front-end component, one instant event per
// recording, timestamped in simulated cycles (1 cycle = 1 µs of trace
// time, so Perfetto's zoom and duration readouts count cycles).
func WriteChromeTrace(w io.Writer, events []Event) error {
	return WriteChromeTraceMeta(w, events, nil)
}

// WriteChromeTraceMeta is WriteChromeTrace with a metadata block
// attached to the trace object (nil or empty meta omits it). Chrome
// and Perfetto ignore unknown metadata, so any provenance fits.
func WriteChromeTraceMeta(w io.Writer, events []Event, meta map[string]any) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	if len(meta) > 0 {
		out.Metadata = meta
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "skia-frontend"},
	})
	for tr := Track(0); tr < numTracks; tr++ {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: int(tr) + 1,
				Args: map[string]any{"name": tr.String()},
			},
			chromeEvent{
				Name: "thread_sort_index", Phase: "M", PID: 1, TID: int(tr) + 1,
				Args: map[string]any{"sort_index": int(tr)},
			})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    e.Cycle,
			PID:   1,
			TID:   int(e.Kind.Track()) + 1,
			Args:  map[string]any{"pc": fmt.Sprintf("%#x", e.PC)},
		}
		switch e.Kind {
		case EvSBBHitU, EvSBDInsertU, EvSBDInsertR:
			ce.Args["target"] = fmt.Sprintf("%#x", e.Arg)
		case EvSBBEvictU, EvSBBEvictR:
			ce.Args["retired"] = e.Arg == 1
		case EvDecodeResteer, EvExecResteer, EvForcedResync:
			ce.Args["to"] = fmt.Sprintf("%#x", e.PC)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
