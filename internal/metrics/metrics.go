// Package metrics is the simulator's observability layer: an interval
// timeseries collector that turns the core's monotonically increasing
// counters into per-interval rows (IPC, miss MPKI, SBB coverage,
// decode-idle breakdown, cache hit rates), a ring-buffered event tracer
// whose recordings export as Chrome trace_event JSON (loadable in
// Perfetto or chrome://tracing), and pprof/runtime-trace profiling
// hooks for the CLIs.
//
// The paper's headline claims are time-varying front-end phenomena —
// FDIP running ahead, BTB-miss re-steers stalling decode, the SBB
// absorbing misses — that end-of-run aggregates average away. The
// collector exposes phase behaviour and warmup convergence; the tracer
// exposes individual re-steers and shadow-decode events on a timeline.
//
// Everything here is designed to cost nothing when disabled: the core
// nil-checks its collector once per cycle and the front-end nil-checks
// its tracer once per event site.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultEvery is the default interval width in instructions.
const DefaultEvery = 100_000

// Sample is a snapshot of the core's cumulative counters at one point
// in simulated time. The collector differences successive samples into
// intervals; the fields mirror the aggregate statistics the simulator
// already keeps (frontend.Stats plus cache and cycle counters), mapped
// here so this package stays a leaf the front-end itself can import.
type Sample struct {
	// Cycles and Instructions are the core's cumulative counters.
	Cycles       uint64
	Instructions uint64

	// BTBMisses counts taken branches the BTB failed to identify;
	// SBBCovered counts the subset the SBB absorbed (no re-steer).
	BTBMisses  uint64
	SBBCovered uint64

	// Resteers by resolving stage.
	DecodeResteers uint64
	ExecResteers   uint64

	// CondMispredicts counts direction mispredictions.
	CondMispredicts uint64

	// Decoder idle cycles, split by cause.
	DecodeIdleCycles        uint64
	DecodeIdleFetchCycles   uint64
	DecodeIdleResteerCycles uint64

	// Cache accesses (demand + prefetch combined) by outcome.
	L1IHits, L1IMisses uint64
	L2Hits, L2Misses   uint64
}

// Interval is one timeseries row: the difference between two samples,
// with the derived rates the analyses plot. Raw deltas are kept
// alongside the rates so consumers can re-derive or re-aggregate; the
// per-interval deltas of every counter sum exactly to the run's
// aggregate statistics.
type Interval struct {
	// Index numbers intervals from 0 within one run.
	Index int `json:"index"`
	// StartInstruction/EndInstruction delimit the interval in retired
	// instructions [start, end); StartCycle/EndCycle likewise in
	// cycles. Boundaries are aligned to retire-width granularity, so
	// interval widths can exceed the configured width by a few
	// instructions.
	StartInstruction uint64 `json:"start_instruction"`
	EndInstruction   uint64 `json:"end_instruction"`
	StartCycle       uint64 `json:"start_cycle"`
	EndCycle         uint64 `json:"end_cycle"`

	// Instructions and Cycles are the interval's deltas.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// IPC is Instructions/Cycles for this interval alone.
	IPC float64 `json:"ipc"`

	// Raw event deltas.
	BTBMisses       uint64 `json:"btb_misses"`
	SBBCovered      uint64 `json:"sbb_covered"`
	DecodeResteers  uint64 `json:"decode_resteers"`
	ExecResteers    uint64 `json:"exec_resteers"`
	CondMispredicts uint64 `json:"cond_mispredicts"`

	// Derived rates.
	BTBMissMPKI float64 `json:"btb_miss_mpki"`
	// EffectiveMissMPKI subtracts SBB-covered misses: the misses that
	// still cost a re-steer.
	EffectiveMissMPKI float64 `json:"effective_miss_mpki"`
	// SBBCoverage is SBBCovered/BTBMisses (0 when no misses).
	SBBCoverage float64 `json:"sbb_coverage"`
	CondMPKI    float64 `json:"cond_mpki"`

	// Decode-idle breakdown as fractions of interval cycles.
	DecodeIdleFrac        float64 `json:"decode_idle_frac"`
	DecodeIdleFetchFrac   float64 `json:"decode_idle_fetch_frac"`
	DecodeIdleResteerFrac float64 `json:"decode_idle_resteer_frac"`

	// Cache hit rates over the interval's accesses (1 when idle).
	L1IHitRate float64 `json:"l1i_hit_rate"`
	L2HitRate  float64 `json:"l2_hit_rate"`
}

// Collector accumulates interval rows from the core's counter samples.
// The core calls Record each time retired instructions cross the next
// interval boundary and Finish once at the end of the measurement
// window; the collector differences each sample against the previous
// one. Not safe for concurrent use: attach one collector per core.
//
//skia:serial
type Collector struct {
	every uint64
	next  uint64
	base  Sample
	ivs   []Interval
}

// NewCollector returns a collector cutting intervals every `every`
// retired instructions (0 selects DefaultEvery).
func NewCollector(every uint64) *Collector {
	if every == 0 {
		every = DefaultEvery
	}
	return &Collector{every: every}
}

// Every returns the configured interval width.
func (c *Collector) Every() uint64 { return c.every }

// Reset establishes the baseline sample (the measurement-window start)
// and discards any recorded intervals.
func (c *Collector) Reset(base Sample) {
	c.base = base
	c.next = base.Instructions + c.every
	c.ivs = c.ivs[:0]
}

// Next returns the instruction count at which the caller should take
// the next sample and call Record.
func (c *Collector) Next() uint64 { return c.next }

// Record closes the current interval at s. The next boundary advances
// past s, so a single call always produces exactly one non-empty
// interval even when s overshoots several boundaries at once.
func (c *Collector) Record(s Sample) {
	c.push(s)
	for c.next <= s.Instructions {
		c.next += c.every
	}
}

// Finish closes the final partial interval, if any instructions
// retired since the last boundary. Runs shorter than one interval
// yield a single partial row; empty windows yield none.
func (c *Collector) Finish(s Sample) {
	if s.Instructions > c.base.Instructions {
		c.push(s)
	}
}

func (c *Collector) push(s Sample) {
	b := c.base
	iv := Interval{
		Index:            len(c.ivs),
		StartInstruction: b.Instructions,
		EndInstruction:   s.Instructions,
		StartCycle:       b.Cycles,
		EndCycle:         s.Cycles,
		Instructions:     s.Instructions - b.Instructions,
		Cycles:           s.Cycles - b.Cycles,
		BTBMisses:        s.BTBMisses - b.BTBMisses,
		SBBCovered:       s.SBBCovered - b.SBBCovered,
		DecodeResteers:   s.DecodeResteers - b.DecodeResteers,
		ExecResteers:     s.ExecResteers - b.ExecResteers,
		CondMispredicts:  s.CondMispredicts - b.CondMispredicts,
	}
	if iv.Cycles > 0 {
		iv.IPC = float64(iv.Instructions) / float64(iv.Cycles)
		idle := s.DecodeIdleCycles - b.DecodeIdleCycles
		iv.DecodeIdleFrac = float64(idle) / float64(iv.Cycles)
		iv.DecodeIdleFetchFrac = float64(s.DecodeIdleFetchCycles-b.DecodeIdleFetchCycles) / float64(iv.Cycles)
		iv.DecodeIdleResteerFrac = float64(s.DecodeIdleResteerCycles-b.DecodeIdleResteerCycles) / float64(iv.Cycles)
	}
	if iv.Instructions > 0 {
		k := float64(iv.Instructions) / 1000
		iv.BTBMissMPKI = float64(iv.BTBMisses) / k
		iv.EffectiveMissMPKI = float64(iv.BTBMisses-iv.SBBCovered) / k
		iv.CondMPKI = float64(iv.CondMispredicts) / k
	}
	if iv.BTBMisses > 0 {
		iv.SBBCoverage = float64(iv.SBBCovered) / float64(iv.BTBMisses)
	}
	iv.L1IHitRate = hitRate(s.L1IHits-b.L1IHits, s.L1IMisses-b.L1IMisses)
	iv.L2HitRate = hitRate(s.L2Hits-b.L2Hits, s.L2Misses-b.L2Misses)
	c.ivs = append(c.ivs, iv)
	c.base = s
}

// hitRate returns hits/(hits+misses), defaulting to 1 for an idle
// interval (no accesses means nothing missed).
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 1
	}
	return float64(hits) / float64(hits+misses)
}

// Intervals returns the recorded rows in order.
func (c *Collector) Intervals() []Interval { return c.ivs }

// Summary condenses the recorded intervals for embedding in report
// envelopes where full NDJSON rows would be noise.
func (c *Collector) Summary() Summary { return Summarize(c.every, c.ivs) }

// Summary is the compact per-run digest of an interval timeseries:
// enough to spot phase behaviour and warmup convergence (first vs last
// interval IPC, min/max spread) without carrying every row.
type Summary struct {
	// Every is the configured interval width in instructions.
	Every uint64 `json:"every"`
	// Count is the number of intervals recorded (the last may be
	// partial).
	Count int `json:"count"`
	// Instructions and Cycles total the covered window.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// IPCMin/IPCMax bound per-interval IPC; IPCMean is the
	// cycle-weighted mean (the window's aggregate IPC).
	IPCMin  float64 `json:"ipc_min"`
	IPCMean float64 `json:"ipc_mean"`
	IPCMax  float64 `json:"ipc_max"`
	// IPCFirst and IPCLast are the first and last intervals' IPC — a
	// quick warmup-convergence check.
	IPCFirst float64 `json:"ipc_first"`
	IPCLast  float64 `json:"ipc_last"`
	// BTBMissMPKIMax is the worst interval's BTB-miss MPKI (burst
	// detector).
	BTBMissMPKIMax float64 `json:"btb_miss_mpki_max"`
	// SBBCoverage is the window-wide SBB coverage: total covered misses
	// over total BTB misses (0 when the window had none). Computed from
	// the summed raw deltas, not averaged per-interval rates, so it
	// matches the run's aggregate coverage.
	SBBCoverage float64 `json:"sbb_coverage"`
}

// Summarize digests interval rows into a Summary.
func Summarize(every uint64, ivs []Interval) Summary {
	s := Summary{Every: every, Count: len(ivs)}
	if len(ivs) == 0 {
		return s
	}
	s.IPCMin = ivs[0].IPC
	s.IPCFirst = ivs[0].IPC
	s.IPCLast = ivs[len(ivs)-1].IPC
	var misses, covered uint64
	for _, iv := range ivs {
		s.Instructions += iv.Instructions
		s.Cycles += iv.Cycles
		misses += iv.BTBMisses
		covered += iv.SBBCovered
		if iv.IPC < s.IPCMin {
			s.IPCMin = iv.IPC
		}
		if iv.IPC > s.IPCMax {
			s.IPCMax = iv.IPC
		}
		if iv.BTBMissMPKI > s.BTBMissMPKIMax {
			s.BTBMissMPKIMax = iv.BTBMissMPKI
		}
	}
	if s.Cycles > 0 {
		s.IPCMean = float64(s.Instructions) / float64(s.Cycles)
	}
	if misses > 0 {
		s.SBBCoverage = float64(covered) / float64(misses)
	}
	return s
}

// WriteNDJSON writes one JSON object per interval, newline-delimited —
// the format dataframe loaders ingest directly.
func WriteNDJSON(w io.Writer, ivs []Interval) error {
	for i := range ivs {
		data, err := json.Marshal(&ivs[i])
		if err != nil {
			return fmt.Errorf("metrics: interval %d: %w", i, err)
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}
