package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// sampleAt fabricates a cumulative sample where every counter is a
// fixed multiple of the instruction count, so interval deltas are easy
// to predict.
func sampleAt(insts uint64) Sample {
	return Sample{
		Instructions:            insts,
		Cycles:                  insts / 2, // IPC 2
		BTBMisses:               insts / 100,
		SBBCovered:              insts / 200,
		DecodeResteers:          insts / 400,
		ExecResteers:            insts / 800,
		CondMispredicts:         insts / 1000,
		DecodeIdleCycles:        insts / 8,
		DecodeIdleFetchCycles:   insts / 16,
		DecodeIdleResteerCycles: insts / 16,
		L1IHits:                 insts / 10,
		L1IMisses:               insts / 30,
		L2Hits:                  insts / 60,
		L2Misses:                insts / 120,
	}
}

// drive runs a collector over a window as the core does: Record at
// each boundary crossing (overshooting by `step` as retire width
// does), Finish at the end.
func drive(c *Collector, window, step uint64) {
	c.Reset(sampleAt(0))
	var insts uint64
	for insts < window {
		insts += step
		if insts > window {
			insts = window
		}
		if insts >= c.Next() {
			c.Record(sampleAt(insts))
		}
	}
	c.Finish(sampleAt(insts))
}

func TestCollectorEvenWindow(t *testing.T) {
	c := NewCollector(1000)
	drive(c, 3000, 10)
	ivs := c.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d, want 3", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Index != i {
			t.Errorf("interval %d has index %d", i, iv.Index)
		}
		if iv.Instructions != 1000 {
			t.Errorf("interval %d width = %d, want 1000", i, iv.Instructions)
		}
		if iv.IPC != 2 {
			t.Errorf("interval %d IPC = %v, want 2", i, iv.IPC)
		}
	}
}

// TestCollectorPartialFinal covers a window not divisible by the
// interval: the final row is partial and the widths sum to the window.
func TestCollectorPartialFinal(t *testing.T) {
	c := NewCollector(1000)
	drive(c, 2500, 10)
	ivs := c.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d, want 3", len(ivs))
	}
	if last := ivs[2]; last.Instructions != 500 {
		t.Errorf("final partial width = %d, want 500", last.Instructions)
	}
}

// TestCollectorIntervalLargerThanWindow covers the opposite edge: one
// partial interval spanning the whole window.
func TestCollectorIntervalLargerThanWindow(t *testing.T) {
	c := NewCollector(1_000_000)
	drive(c, 2500, 10)
	ivs := c.Intervals()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %d, want 1", len(ivs))
	}
	if ivs[0].Instructions != 2500 || ivs[0].StartInstruction != 0 || ivs[0].EndInstruction != 2500 {
		t.Errorf("interval = %+v", ivs[0])
	}
}

// TestCollectorEmptyWindow covers warmup-only runs: zero instructions
// after the baseline emit nothing.
func TestCollectorEmptyWindow(t *testing.T) {
	c := NewCollector(1000)
	c.Reset(sampleAt(12345))
	c.Finish(sampleAt(12345))
	if n := len(c.Intervals()); n != 0 {
		t.Fatalf("intervals = %d, want 0", n)
	}
	if s := c.Summary(); s.Count != 0 || s.Instructions != 0 {
		t.Errorf("summary = %+v", s)
	}
}

// TestCollectorOvershoot checks a Record that lands past several
// boundaries at once still yields exactly one interval and the next
// boundary lands beyond the sample.
func TestCollectorOvershoot(t *testing.T) {
	c := NewCollector(100)
	c.Reset(sampleAt(0))
	c.Record(sampleAt(750)) // crossed boundaries 100..700 in one retire burst
	if n := len(c.Intervals()); n != 1 {
		t.Fatalf("intervals = %d, want 1", n)
	}
	if c.Next() != 800 {
		t.Errorf("next boundary = %d, want 800", c.Next())
	}
}

// TestCollectorSumsToAggregate is the conservation law the acceptance
// criteria name: per-interval deltas of every counter sum to the
// aggregate between baseline and final sample.
func TestCollectorSumsToAggregate(t *testing.T) {
	c := NewCollector(700) // deliberately misaligned with the window
	drive(c, 10_000, 12)
	final := sampleAt(10_000)
	var insts, cycles, misses, covered, dec, exe, cond uint64
	for _, iv := range c.Intervals() {
		insts += iv.Instructions
		cycles += iv.Cycles
		misses += iv.BTBMisses
		covered += iv.SBBCovered
		dec += iv.DecodeResteers
		exe += iv.ExecResteers
		cond += iv.CondMispredicts
	}
	if insts != final.Instructions || cycles != final.Cycles {
		t.Errorf("insts/cycles sum %d/%d, want %d/%d", insts, cycles, final.Instructions, final.Cycles)
	}
	if misses != final.BTBMisses || covered != final.SBBCovered {
		t.Errorf("misses/covered sum %d/%d, want %d/%d", misses, covered, final.BTBMisses, final.SBBCovered)
	}
	if dec != final.DecodeResteers || exe != final.ExecResteers || cond != final.CondMispredicts {
		t.Errorf("resteer/cond sums %d/%d/%d, want %d/%d/%d",
			dec, exe, cond, final.DecodeResteers, final.ExecResteers, final.CondMispredicts)
	}
}

func TestSummarize(t *testing.T) {
	ivs := []Interval{
		{Instructions: 100, Cycles: 100, IPC: 1, BTBMissMPKI: 5},
		{Instructions: 300, Cycles: 100, IPC: 3, BTBMissMPKI: 2},
		{Instructions: 200, Cycles: 100, IPC: 2, BTBMissMPKI: 9},
	}
	s := Summarize(1000, ivs)
	if s.Count != 3 || s.Every != 1000 {
		t.Errorf("count/every = %d/%d", s.Count, s.Every)
	}
	if s.IPCMin != 1 || s.IPCMax != 3 || s.IPCFirst != 1 || s.IPCLast != 2 {
		t.Errorf("ipc spread = %+v", s)
	}
	if math.Abs(s.IPCMean-2) > 1e-12 { // 600 insts / 300 cycles
		t.Errorf("ipc mean = %v, want 2", s.IPCMean)
	}
	if s.BTBMissMPKIMax != 9 {
		t.Errorf("mpki max = %v, want 9", s.BTBMissMPKIMax)
	}
}

func TestWriteNDJSON(t *testing.T) {
	c := NewCollector(1000)
	drive(c, 2500, 10)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, c.Intervals()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var rows int
	for sc.Scan() {
		var iv Interval
		if err := json.Unmarshal(sc.Bytes(), &iv); err != nil {
			t.Fatalf("row %d: %v", rows, err)
		}
		if iv.Index != rows {
			t.Errorf("row %d has index %d", rows, iv.Index)
		}
		// Spot-check that the keyed fields the tooling depends on
		// survive the trip.
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"index", "instructions", "cycles", "ipc",
			"btb_miss_mpki", "effective_miss_mpki", "sbb_coverage",
			"decode_idle_frac", "l1i_hit_rate", "l2_hit_rate"} {
			if _, ok := m[k]; !ok {
				t.Errorf("row %d lacks key %q", rows, k)
			}
		}
		rows++
	}
	if rows != len(c.Intervals()) {
		t.Errorf("rows = %d, want %d", rows, len(c.Intervals()))
	}
}
