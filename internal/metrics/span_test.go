package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// span builds a test span n microseconds long starting at offset o.
func testSpan(name, scope string, o, n time.Duration) Span {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return Span{
		TraceID: "0af7651916cd43dd8448eb211c80319c",
		SpanID:  fmt.Sprintf("%016x", n),
		Name:    name,
		Scope:   scope,
		Start:   base.Add(o),
		End:     base.Add(o + n),
	}
}

func TestSpanRingWraparound(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		r.RecordSpan(testSpan("run", fmt.Sprintf("job-%d", i), 0, time.Duration(i+1)*time.Microsecond))
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d", r.Total())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d", r.Dropped())
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans", len(spans))
	}
	// Oldest-first: jobs 6..9 survive.
	for i, s := range spans {
		if want := fmt.Sprintf("job-%d", i+6); s.Scope != want {
			t.Errorf("span %d scope = %q, want %q", i, s.Scope, want)
		}
	}
}

// TestSpanRingConcurrent exercises the ring from many goroutines; run
// with -race this is the concurrency contract RingTracer does not make.
func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.RecordSpan(testSpan("submit", "job", 0, time.Microsecond))
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
}

// TestWriteSpanChromeTrace holds the export to the trace_event schema:
// "X" complete events with ts/dur in microseconds relative to the
// earliest span, one named thread per phase, metadata preserved.
func TestWriteSpanChromeTrace(t *testing.T) {
	spans := []Span{
		testSpan("submit", "job-1", 0, 50*time.Microsecond),
		testSpan("queue", "job-1", 50*time.Microsecond, 200*time.Microsecond),
		testSpan("run", "job-1", 250*time.Microsecond, 1000*time.Microsecond),
		testSpan("stream", "job-1", 1250*time.Microsecond, 30*time.Microsecond),
	}
	spans[1].ParentID = spans[0].SpanID
	var buf bytes.Buffer
	if err := WriteSpanChromeTrace(&buf, spans, map[string]any{"job_id": "job-1"}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Dur   uint64         `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Metadata["job_id"] != "job-1" {
		t.Errorf("metadata = %v", out.Metadata)
	}
	var complete, threads int
	threadNames := map[string]bool{}
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "X":
			complete++
			if e.Name == "queue" {
				if e.TS != 50 || e.Dur != 200 {
					t.Errorf("queue span ts=%d dur=%d, want 50/200", e.TS, e.Dur)
				}
				if e.Args["parent_id"] != spans[0].SpanID {
					t.Errorf("queue parent = %v", e.Args["parent_id"])
				}
			}
			if e.Args["trace_id"] != spans[0].TraceID {
				t.Errorf("span %s lacks trace id: %v", e.Name, e.Args)
			}
		case "M":
			if e.Name == "thread_name" {
				threads++
				threadNames[fmt.Sprint(e.Args["name"])] = true
			}
		}
	}
	if complete != 4 {
		t.Errorf("complete events = %d, want 4", complete)
	}
	for _, n := range []string{"submit", "queue", "run", "stream"} {
		if !threadNames[n] {
			t.Errorf("no thread for phase %q (have %v)", n, threadNames)
		}
	}
	if threads != 4 {
		t.Errorf("threads = %d", threads)
	}
}
